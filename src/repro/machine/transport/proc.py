"""The real-parallelism transport backend (``proc``): wire format and store.

Where ``msg`` and ``shmem`` *simulate* a parallel machine inside one
Python process, the ``proc`` backend executes the same compiled node
programs on real OS processes (``multiprocessing`` fork workers), moving
data through pipes carrying an explicit binary frame format and — for
payloads past a size threshold — ``multiprocessing.shared_memory``
segments, the paper's delayed binding (section 5) taken to actual
hardware.  This module owns the parts of that binding that are pure
data plumbing:

* the **wire format** (:class:`Frame`, :func:`encode_frame`,
  :func:`decode_frame`): a versioned binary layout carrying the transfer
  kind, the name tag (variable + section triplets — the paper's
  footnote-2 tag), source/destination pids, the sender-assigned per-tag
  sequence number, Lamport-style virtual send/arrive times, and the
  payload either inline or as a shared-memory reference;
* the **segment registry** (:class:`SegmentRegistry`): every
  shared-memory segment this process creates is tracked and swept by an
  ``atexit`` finalizer, and a whole run's segments share a name prefix
  so interrupted runs can be reclaimed by prefix
  (:func:`sweep_shm_prefix`) rather than leaked into ``/dev/shm``;
* :class:`ProcTransport` — the *simulator-side* face of the backend.
  The engine facade (:class:`~repro.machine.procrt.ProcEngine`) keeps a
  full in-process simulation of every ``proc`` run as the semantic
  oracle; that simulation runs over this transport, which behaves
  exactly like the message-passing binding (same costs, same rendezvous)
  but answers to the name ``proc`` and can record the oracle's matching
  schedule (:class:`MatchRecorder`) so the real execution replays the
  simulator's deterministic rendezvous decisions.

The runtime that forks workers and replays effect streams against real
pipes lives in :mod:`repro.machine.procrt`; see docs/BACKENDS.md for the
full wire-format table and the oracle protocol.
"""

from __future__ import annotations

import atexit
import os
import struct
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ...core.sections import Section, Triplet
from ..message import Message, TransferKind
from .base import PendingRecv
from .msg import MessagePassingTransport

__all__ = [
    "Frame",
    "MatchRecorder",
    "ProcTransport",
    "SegmentRegistry",
    "decode_frame",
    "encode_frame",
    "shm_name_prefix",
    "sweep_shm_prefix",
]

#: Wire-format magic + version (bumped on any layout change).
FRAME_MAGIC = b"XDPF"
FRAME_VERSION = 1

#: Payloads at or above this many bytes travel via a shared-memory
#: segment; smaller ones ride inline in the frame.  Overridable through
#: ``REPRO_PROC_SHM_THRESHOLD`` (0 forces every payload through shm).
DEFAULT_SHM_THRESHOLD = 2048

_KIND_CODE = {
    TransferKind.VALUE: 0,
    TransferKind.OWNERSHIP: 1,
    TransferKind.OWN_VALUE: 2,
}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}

# Payload transport modes.
_PL_NONE, _PL_INLINE, _PL_SHM = 0, 1, 2

#: Fixed-size frame head: magic, version, kind, payload mode, src, dst,
#: per-(tag, src, dst) ordinal, send/arrive virtual times, variable-name
#: length, section rank, dtype-string length, shm-name length.
_HEAD = struct.Struct("<4sBBBiiqddHBBB")


@dataclass(frozen=True)
class Frame:
    """One transfer on the ``proc`` wire (the unit of the framing format).

    ``ordinal`` is the sender-assigned sequence number within the frame's
    ``(kind, var, sec, src, dst)`` stream — the receiver uses it (plus
    the oracle's match plan) to reproduce the simulator's FIFO-by-seq
    rendezvous exactly; ``dst is None`` is the unspecified-recipient pool
    form.  ``payload`` is the carried array (``None`` for pure-ownership
    transfers); en/decoding may stage it through shared memory without
    changing frame equality.
    """

    kind: TransferKind
    var: str
    sec: Section
    src: int
    dst: int | None
    ordinal: int
    send_vt: float
    arrive_vt: float
    payload: np.ndarray | None

    def tag(self) -> tuple:
        return (self.kind, self.var, self.sec)

    @property
    def nbytes(self) -> int:
        return 0 if self.payload is None else self.payload.nbytes


def _pack_section(sec: Section) -> bytes:
    return b"".join(
        struct.pack("<qqq", t.lo, t.hi, t.step) for t in sec.dims
    )


def _unpack_section(buf: bytes, offset: int, rank: int) -> tuple[Section, int]:
    dims = []
    for _ in range(rank):
        lo, hi, step = struct.unpack_from("<qqq", buf, offset)
        offset += 24
        dims.append(Triplet(lo, hi, step))
    return Section(tuple(dims)), offset


def encode_frame(
    frame: Frame,
    *,
    shm_threshold: int | None = None,
    registry: "SegmentRegistry | None" = None,
) -> bytes:
    """Serialize ``frame`` to the binary wire format.

    When ``registry`` is given and the payload is at least
    ``shm_threshold`` bytes, the payload is written into a fresh
    shared-memory segment and only its name travels on the wire; the
    receiver unlinks the segment after copying out
    (:func:`decode_frame`).  Without a registry everything rides inline
    (the mode used by the framing round-trip property tests).
    """
    payload = frame.payload
    if shm_threshold is None:
        shm_threshold = int(
            os.environ.get("REPRO_PROC_SHM_THRESHOLD", DEFAULT_SHM_THRESHOLD)
        )
    var_b = frame.var.encode()
    if payload is None:
        mode, dtype_b, shm_b, shape, body = _PL_NONE, b"", b"", (), b""
    else:
        payload = np.ascontiguousarray(payload)
        dtype_b = payload.dtype.str.encode()
        shape = payload.shape
        if registry is not None and payload.nbytes >= shm_threshold:
            seg = registry.create(payload.nbytes)
            seg.buf[: payload.nbytes] = payload.tobytes()
            mode, shm_b, body = _PL_SHM, seg.name.encode(), b""
            # The receiver owns the segment's lifetime from here: the
            # sender keeps no reference beyond the registry's crash sweep.
        else:
            mode, shm_b, body = _PL_INLINE, b"", payload.tobytes()
    head = _HEAD.pack(
        FRAME_MAGIC,
        FRAME_VERSION,
        _KIND_CODE[frame.kind],
        mode,
        frame.src,
        -1 if frame.dst is None else frame.dst,
        frame.ordinal,
        frame.send_vt,
        frame.arrive_vt,
        len(var_b),
        len(frame.sec.dims),
        len(dtype_b),
        len(shm_b),
    )
    shape_b = struct.pack("<B", len(shape)) + b"".join(
        struct.pack("<q", s) for s in shape
    )
    return b"".join(
        (head, var_b, _pack_section(frame.sec), dtype_b, shm_b, shape_b, body)
    )


def decode_frame(buf: bytes, *, unlink_shm: bool = True) -> Frame:
    """Parse one wire frame; the inverse of :func:`encode_frame`.

    A shared-memory payload is copied out of its segment, which is then
    closed and (by default) unlinked — the receiver is the last owner of
    a delivered payload segment.
    """
    (
        magic, version, kind_code, mode, src, dst, ordinal,
        send_vt, arrive_vt, var_len, rank, dtype_len, shm_len,
    ) = _HEAD.unpack_from(buf, 0)
    if magic != FRAME_MAGIC or version != FRAME_VERSION:
        raise ValueError(
            f"bad proc frame: magic={magic!r} version={version}"
        )
    off = _HEAD.size
    var = buf[off:off + var_len].decode()
    off += var_len
    sec, off = _unpack_section(buf, off, rank)
    dtype_b = buf[off:off + dtype_len]
    off += dtype_len
    shm_name = buf[off:off + shm_len].decode()
    off += shm_len
    (nshape,) = struct.unpack_from("<B", buf, off)
    off += 1
    shape = tuple(
        struct.unpack_from("<q", buf, off + 8 * i)[0] for i in range(nshape)
    )
    off += 8 * nshape
    if mode == _PL_NONE:
        payload = None
    else:
        dtype = np.dtype(dtype_b.decode())
        count = 1
        for s in shape:
            count *= s
        if mode == _PL_INLINE:
            payload = np.frombuffer(
                buf, dtype=dtype, count=count, offset=off
            ).reshape(shape).copy()
        else:
            seg = shared_memory.SharedMemory(name=shm_name)
            try:
                payload = np.frombuffer(
                    seg.buf, dtype=dtype, count=count
                ).reshape(shape).copy()
            finally:
                seg.close()
                if unlink_shm:
                    try:
                        seg.unlink()
                    except FileNotFoundError:  # pragma: no cover - raced
                        pass
    return Frame(
        kind=_CODE_KIND[kind_code],
        var=var,
        sec=sec,
        src=src,
        dst=None if dst < 0 else dst,
        ordinal=ordinal,
        send_vt=send_vt,
        arrive_vt=arrive_vt,
        payload=payload,
    )


# --------------------------------------------------------------------- #
# shared-memory hygiene
# --------------------------------------------------------------------- #

#: Every segment the proc backend creates is named with this prefix, so
#: leak sweeps (and the conftest leak assertion) can identify ours.
SHM_PREFIX = "xdp9proc"


def shm_name_prefix(owner_pid: int | None = None, run: int = 0) -> str:
    """Run-scoped segment-name prefix: backend tag, creator pid, run #."""
    pid = os.getpid() if owner_pid is None else owner_pid
    return f"{SHM_PREFIX}_{pid}_{run}_"


def _shm_dir_entries(prefix: str) -> list[str]:
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux hosts
        return []
    try:
        return [n for n in os.listdir(shm_dir) if n.startswith(prefix)]
    except OSError:  # pragma: no cover - defensive
        return []


def sweep_shm_prefix(prefix: str) -> list[str]:
    """Unlink every shared-memory segment whose name starts with ``prefix``.

    Returns the names that were reclaimed — the crash-path backstop for
    segments whose receiver never copied them out (interrupted runs,
    SIGKILLed workers).  The normal path leaks nothing: receivers unlink
    on delivery and :class:`SegmentRegistry` finalizes at exit.
    """
    reclaimed = []
    for name in _shm_dir_entries(prefix):
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:  # pragma: no cover - raced
            continue
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - raced
            continue
        reclaimed.append(name)
    return reclaimed


def leaked_shm_segments() -> list[str]:
    """Names of every live proc-backend segment on this host (diagnostics)."""
    return _shm_dir_entries(SHM_PREFIX)


class SegmentRegistry:
    """Tracks shared-memory segments created by this process.

    ``create`` hands out segments under the registry's run-scoped name
    prefix; ``release`` forgets a segment whose ownership moved to a
    receiver; ``sweep`` force-unlinks everything still registered (and
    anything under the prefix — covering segments created by forked
    children that died before their receiver copied out).  The registry
    arms a process-wide ``atexit`` sweep on first use so interrupted
    runs cannot leak ``/dev/shm`` entries.
    """

    _atexit_armed = False
    _live: "list[SegmentRegistry]" = []

    def __init__(self, prefix: str | None = None):
        self.prefix = prefix if prefix is not None else shm_name_prefix()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._counter = 0
        cls = SegmentRegistry
        cls._live.append(self)
        if not cls._atexit_armed:
            cls._atexit_armed = True
            atexit.register(cls._sweep_all)

    @classmethod
    def _sweep_all(cls) -> None:
        for reg in list(cls._live):
            try:
                reg.sweep()
            except Exception:  # pragma: no cover - defensive
                pass

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        self._counter += 1
        name = f"{self.prefix}{os.getpid()}_{self._counter}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
        self._segments[name] = seg
        return seg

    def release(self, name: str) -> None:
        """Forget ``name`` (its receiver took ownership); keep it alive."""
        seg = self._segments.pop(name, None)
        if seg is not None:
            seg.close()

    def sweep(self) -> list[str]:
        """Unlink everything still registered plus any prefix leftovers."""
        swept = []
        for name, seg in list(self._segments.items()):
            seg.close()
            try:
                seg.unlink()
                swept.append(name)
            except FileNotFoundError:
                pass
            del self._segments[name]
        swept.extend(sweep_shm_prefix(self.prefix))
        if self in SegmentRegistry._live:
            SegmentRegistry._live.remove(self)
        return swept


# --------------------------------------------------------------------- #
# the simulator-side transport (oracle face of the backend)
# --------------------------------------------------------------------- #


@dataclass
class MatchRecorder:
    """Records the oracle simulation's rendezvous schedule.

    The simulator's matching is FIFO-by-engine-seq per ``(kind, var,
    sec)`` tag — a deterministic function of the program (and, under
    fault middleware, of the seed).  Real processes observe only
    real-time arrival order, so the proc runtime replays this recorded
    schedule instead: for processor ``pid``'s ``k``-th receive of a tag,
    the plan names the exact emitted frame ``(src, dst-or-pool,
    per-stream ordinal)`` that satisfies it, the completion's virtual
    time, and its global tie-break rank.  Emissions are observed at the
    transport's injection seam (:class:`RecordingInjector`), *outside*
    any middleware: a dropped copy still consumes its stream ordinal
    (the worker emits it; nobody claims it), and a middleware-conjured
    duplicate maps back to the emission it was copied from via its
    ``send_time`` (sender clocks strictly increase per copy, so the pair
    ``(stream, send_time)`` is unique) — the duplicate becomes a second
    claim on the same frame.  Receives the oracle left unmatched get no
    plan entry and stay pending forever; messages it left unclaimed are
    never granted.
    """

    #: (kind, var, sec, dst_pid, recv_rank) ->
    #:     (src, dst_or_None, stream_ordinal, crank, completion_time)
    plan: dict = field(default_factory=dict)
    #: (kind, var, sec, src, dst) -> {send_time: emission ordinal}
    _streams: dict = field(default_factory=dict)
    _counts: dict = field(default_factory=dict)
    _matches: list = field(default_factory=list)

    def on_emit(self, msg: Message) -> None:
        key = (msg.kind, msg.name.var, msg.name.sec, msg.src, msg.dst)
        n = self._counts.get(key, 0)
        self._counts[key] = n + 1
        self._streams.setdefault(key, {})[msg.send_time] = n

    def on_match(self, msg: Message, recv: PendingRecv, ctime: float) -> None:
        skey = (msg.kind, msg.name.var, msg.name.sec, msg.src, msg.dst)
        ordinal = self._streams[skey][msg.send_time]
        self._matches.append((
            (msg.kind, msg.name.var, msg.name.sec), recv.pid, recv.seq,
            (msg.src, msg.dst, ordinal, ctime),
        ))

    def finalize(self, leftover_pending) -> None:
        """Convert recorded matches into the per-receive plan.

        A receive's plan key uses its *rank* among the pid's receives of
        the same tag (the worker can count that locally); unmatched
        pending receives occupy ranks too, so ``leftover_pending`` must
        iterate them.  Matching is FIFO-by-seq, so a crashed processor's
        withdrawn receives are always a rank *suffix* — dropping them
        never renumbers a matched receive.  The match list is already in
        completion-creation order; its index is the cross-receive
        tie-break rank (``crank``) workers use for equal completion
        times.
        """
        all_recvs: dict[tuple, list] = {}
        for tagkey, pid, seq, _frame in self._matches:
            all_recvs.setdefault((tagkey, pid), []).append(seq)
        for recv in leftover_pending:
            tagkey = (recv.kind, recv.name.var, recv.name.sec)
            all_recvs.setdefault((tagkey, recv.pid), []).append(recv.seq)
        rank = {
            key: {seq: k for k, seq in enumerate(sorted(seqs))}
            for key, seqs in all_recvs.items()
        }
        for crank, (tagkey, pid, seq, frame) in enumerate(self._matches):
            k = rank[(tagkey, pid)][seq]
            kind, var, sec = tagkey
            src, dst, ordinal, ctime = frame
            self.plan[(kind, var, sec, pid, k)] = (src, dst, ordinal, crank, ctime)
        self._streams.clear()
        self._counts.clear()
        self._matches.clear()


class RecordingInjector:
    """Interposes on the injection seam to observe raw emissions.

    Installed as the base transport's ``injector`` during an oracle
    pass, *outside* the whole middleware stack, so every copy the node
    program emits is recorded exactly once — before fault middleware
    drops, delays or duplicates it.
    """

    def __init__(self, inner, recorder: MatchRecorder) -> None:
        self.inner = inner
        self.recorder = recorder

    def inject(self, msg: Message, nbytes: int) -> None:
        self.recorder.on_emit(msg)
        self.inner.inject(msg, nbytes)


class ProcTransport(MessagePassingTransport):
    """Simulator-side binding of the ``proc`` backend.

    Costs and rendezvous are exactly the message-passing transport's —
    the real machine under ``proc`` *is* message passing over pipes — so
    the oracle simulation of a proc run shares the ``msg`` backend's
    virtual-time accounting, trace vocabulary and diagnostics.  When a
    :class:`MatchRecorder` is attached, every rendezvous is reported to
    it with its bound completion time; the recorded schedule is what the
    forked workers replay (see :mod:`repro.machine.procrt`).
    """

    name = "proc"

    def __init__(self) -> None:
        super().__init__()
        self.recorder: MatchRecorder | None = None

    def _match(self, msg: Message, recv: PendingRecv) -> None:
        if self.recorder is not None:
            self.recorder.on_match(msg, recv, self.completion_time(msg, recv))
        super()._match(msg, recv)

    def leftover_pending(self):
        """Unmatched pending receives (for plan finalization)."""
        from .base import RecvIndex

        for index in self._pending.values():
            if index.__class__ is RecvIndex:
                yield from index
            elif not index.claimed:
                yield index
