"""The ``Transport`` protocol and the shared tag-rendezvous machinery.

A transport is the engine's binding of XDP transfer effects to concrete
communication primitives (paper section 5).  The scheduler core calls
``send`` / ``recv_init`` / ``on_crash`` / ``reset`` and asks for
diagnostics; the transport calls back
:meth:`~repro.machine.scheduler.Scheduler.complete` once a transfer's
completion time is bound.  Injection of each transmitted copy goes
through ``self.injector.inject(msg, nbytes)`` so middleware (fault
injection, reliable delivery) can interpose on any backend.

:class:`TagTransport` implements the rendezvous relation both shipped
backends share — FIFO-by-seq matching per ``(kind, name)`` tag, with
directed traffic split per destination and undirected traffic claimable
by anyone — and leaves the *binding* to subclasses: wire size, occupancy
and transit costs, completion-time rule, and trace vocabulary.  Keeping
the relation identical across backends is what guarantees result
transparency (same final arrays, different timings); see docs/BACKENDS.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ...core.errors import OwnershipError
from ...core.sections import Section
from ..effects import RecvInit, Send
from ..message import Message, MessageName, MessagePool, TransferKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scheduler import Scheduler, _Proc

__all__ = ["PendingRecv", "RecvIndex", "TagTransport", "Transport"]


@dataclass(slots=True)
class PendingRecv:
    """One posted receive (msg backend) or prefetch fence (shmem backend)."""

    seq: int
    pid: int
    init_time: float
    kind: TransferKind
    name: MessageName
    into_var: str
    into_sec: Section
    claimed: bool = field(default=False, compare=False)


class RecvIndex:
    """Pending receives for one ``(kind, name)`` tag, claimable two ways.

    An arriving *unspecified-destination* message must match the earliest
    pending receive overall; a *directed* message must match the earliest
    pending receive posted by its destination.  Each receive therefore
    appears in two FIFO queues — the global one and its processor's — and
    a claim through either marks it ``claimed`` so the other queue skips
    the husk lazily.  Both claim paths are amortized O(1).
    """

    __slots__ = ("fifo", "by_pid", "live")

    def __init__(self) -> None:
        self.fifo: deque[PendingRecv] = deque()
        self.by_pid: dict[int, deque[PendingRecv]] = {}
        self.live = 0

    def __len__(self) -> int:
        return self.live

    def __iter__(self) -> Iterator[PendingRecv]:
        """Unclaimed pending receives in seq order (diagnostics only)."""
        return (r for r in self.fifo if not r.claimed)

    def add(self, recv: PendingRecv) -> None:
        self.fifo.append(recv)
        self.by_pid.setdefault(recv.pid, deque()).append(recv)
        self.live += 1

    @staticmethod
    def _pop_live(queue: deque[PendingRecv] | None) -> PendingRecv | None:
        while queue:
            recv = queue.popleft()
            if not recv.claimed:
                recv.claimed = True
                return recv
        return None

    def claim_any(self) -> PendingRecv | None:
        """Pop the earliest unclaimed receive regardless of processor."""
        recv = self._pop_live(self.fifo)
        if recv is not None:
            self.live -= 1
        return recv

    def claim_for(self, pid: int) -> PendingRecv | None:
        """Pop the earliest unclaimed receive posted by ``pid``."""
        recv = self._pop_live(self.by_pid.get(pid))
        if recv is not None:
            self.live -= 1
        return recv


class Transport:
    """Interface between the scheduler core and a communication backend.

    Subclasses (or middleware) must provide the traffic operations; the
    class attributes name the backend's primitives in traces and
    diagnostics.  ``injector`` is the entry point of the middleware chain
    for each transmitted copy — it is ``self`` for a bare transport and
    the outermost middleware once wrapped.
    """

    #: Backend name as used by ``--backend`` and ``RunStats`` consumers.
    name = "?"
    #: Trace-event vocabulary (msg: send/recv-init/recv-done).
    send_event = "send"
    recv_event = "recv-init"
    completion_event = "recv-done"
    #: Deadlock-report vocabulary.
    pending_label = "pending receive"
    pool_header = "unclaimed message pool:"

    def __init__(self) -> None:
        self.core: "Scheduler | None" = None
        self.injector: "Transport" = self
        self._fast = False

    def bind(self, core: "Scheduler") -> None:
        """Attach to the scheduler core (seq numbers, rng, model, emit)."""
        self.core = core

    def enable_fast_path(self) -> None:
        """Opt in to semantically identical cache-aware shortcuts.

        The batched engine mode enables this together with the symbol
        tables' section caches; transports may then fuse intrinsic
        sequences (e.g. the value-send ownership check + gather) through
        the cached resolution records.  Observable behaviour — clocks,
        matching, errors and their texts — is unchanged.  Survives
        :meth:`reset`.
        """
        self._fast = True

    # -- per-run lifecycle --------------------------------------------- #

    def reset(self) -> None:
        """Drop all transport-private per-run state (pools, fences)."""
        raise NotImplementedError

    # -- traffic -------------------------------------------------------- #

    def send(self, proc: "_Proc", eff: Send) -> None:
        raise NotImplementedError

    def recv_init(self, proc: "_Proc", eff: RecvInit) -> None:
        raise NotImplementedError

    def inject(self, msg: Message, nbytes: int) -> None:
        """Put one transmitted copy on the network (middleware seam)."""
        self.route(msg)

    def route(self, msg: Message) -> None:
        """Deliver one arrived copy: match a pending receive or queue it."""
        raise NotImplementedError

    def transit(self, nbytes: int) -> float:
        """Departure-to-arrival delay of one copy (used by middleware)."""
        raise NotImplementedError

    def on_crash(self, proc: "_Proc") -> None:
        """Withdraw the crashed processor's pending obligations."""
        raise NotImplementedError

    # -- diagnostics ---------------------------------------------------- #

    def unclaimed_count(self) -> int:
        raise NotImplementedError

    def unmatched_count(self) -> int:
        raise NotImplementedError

    def pending_by_pid(self) -> dict[int, list[tuple[float, str]]]:
        raise NotImplementedError

    def unclaimed_listing(self) -> Iterator[str]:
        raise NotImplementedError


class TagTransport(Transport):
    """Shared rendezvous machinery: FIFO-by-seq matching per tag.

    Subclasses bind the costs and vocabulary:

    * :meth:`wire_bytes` — bytes one copy occupies on the wire;
    * :meth:`send_occupancy` / :meth:`recv_occupancy` — processor
      overhead charged at initiation;
    * :meth:`transit` — departure-to-arrival delay;
    * :meth:`completion_time` — when the matched pair completes.
    """

    #: Tag key: ``(kind, var, sec)``.  Keying the rendezvous dicts on the
    #: raw triple (rather than a ``MessageName`` wrapper) keeps every
    #: lookup a plain tuple hash; the interned ``MessageName`` objects in
    #: ``_names`` are what messages and receives carry for diagnostics.
    def reset(self) -> None:
        self._unclaimed: dict[tuple, MessagePool] = {}
        self._pending: dict[tuple, RecvIndex] = {}
        self._names: dict[tuple, MessageName] = {}
        # Fast-path memos (populated only under ``enable_fast_path``):
        # ``_effmemo`` caches per-effect-object derived values, keyed by
        # ``id(eff)`` — sound because the record holds the effect itself,
        # so a live entry's id can never be recycled.  ``_costmemo`` caches
        # ``(wire_bytes, send_occupancy, transit)`` per payload byte size;
        # both backends' cost hooks are pure in the byte count and the
        # model constants snapshotted at reset.
        # ``_keymemo`` maps an interned MessageName's id to its route key;
        # interning is per ``(kind, var, sec)``, so the mapping is 1:1.
        self._effmemo: dict[int, tuple] = {}
        self._costmemo: dict[int, tuple] = {}
        self._keymemo: dict[int, tuple] = {}

    # -- binding hooks -------------------------------------------------- #

    def wire_bytes(self, payload: np.ndarray | None) -> int:
        raise NotImplementedError

    def send_occupancy(self, nbytes: int) -> float:
        raise NotImplementedError

    def recv_occupancy(self) -> float:
        raise NotImplementedError

    def completion_time(self, msg: Message, recv: PendingRecv) -> float:
        return max(recv.init_time, msg.arrive_time)

    # -- traffic -------------------------------------------------------- #

    def send(self, proc: "_Proc", eff: Send) -> None:
        core = self.core
        st = proc.ctx.symtab
        if self._fast:
            memo = self._effmemo.get(id(eff))
            if memo is None:
                nk = (eff.kind, eff.var, eff.sec)
                name = self._names.get(nk)
                if name is None:
                    name = self._names[nk] = MessageName(eff.var, eff.sec)
                self._effmemo[id(eff)] = (eff, name)
            else:
                name = memo[1]
        else:
            nk = (eff.kind, eff.var, eff.sec)
            name = self._names.get(nk)
            if name is None:
                name = self._names[nk] = MessageName(eff.var, eff.sec)
        if eff.kind is TransferKind.VALUE:
            # "E ->": E must be an exclusive section owned by p.  No
            # accessibility check — XDP does not test state automatically.
            if self._fast:
                # One resolution-record probe covers both the ownership
                # check and the gather (identical semantics and errors).
                payload: np.ndarray | None = st.read_owned(eff.var, eff.sec)
            else:
                if not st.iown(eff.var, eff.sec):
                    raise OwnershipError(
                        f"P{proc.pid + 1} sends unowned section {name}"
                    )
                payload = st.read(eff.var, eff.sec)
        else:
            # Owner sends block until accessible; the program yields a
            # WaitAccessible first, and release_ownership re-validates.
            payload = st.release_ownership(
                eff.var, eff.sec, with_value=eff.kind is TransferKind.OWN_VALUE
            )

        # Multicast is *serialized injection*: the sender's clock (and its
        # send overhead) accumulates the per-copy occupancy BEFORE each
        # copy is stamped, so the i-th destination's send_time and
        # arrive_time are one occupancy later than the (i-1)-th — one
        # network interface (or store buffer) injecting the copies
        # back-to-back.  Pinned by
        # tests/test_engine.py::TestValueTransfer::test_multicast_serialized_injection;
        # do not "optimize" this into a single timestamp.
        dests = eff.dests if eff.dests is not None else (None,)
        # ``payload`` is already a private gather (read/release copy); the
        # first transmitted copy takes it as-is and only the extra
        # multicast copies pay another ``.copy()``.  Wire size, occupancy
        # and transit depend only on the payload, so they are computed
        # once — the *timestamps* still advance copy by copy.
        fresh = payload
        stats = proc.stats
        trace = core.trace_enabled
        seq = core._seq
        inject = self.injector.inject
        if self._fast:
            pbytes = 0 if payload is None else payload.nbytes
            costs = self._costmemo.get(pbytes)
            if costs is None:
                nbytes = self.wire_bytes(payload)
                costs = self._costmemo[pbytes] = (
                    nbytes, self.send_occupancy(nbytes), self.transit(nbytes),
                )
            nbytes, occupancy, transit = costs
        else:
            nbytes = self.wire_bytes(payload)
            occupancy = self.send_occupancy(nbytes)
            transit = self.transit(nbytes)
        kind = eff.kind
        pid = proc.pid
        for dst in dests:
            clock = proc.clock + occupancy
            proc.clock = clock
            stats.send_overhead += occupancy
            if fresh is not None:
                pl, fresh = fresh, None
            else:
                pl = None if payload is None else payload.copy()
            msg = Message(
                next(seq), kind, name, pl, pid, dst, clock, clock + transit,
            )
            stats.msgs_sent += 1
            stats.bytes_sent += nbytes
            if trace:
                core._emit(clock, pid, self.send_event, str(msg))
            inject(msg, nbytes)

    def recv_init(self, proc: "_Proc", eff: RecvInit) -> None:
        core = self.core
        st = proc.ctx.symtab
        # Constant per the immutable model; snapshotted by subclass reset.
        occupancy = self._recv_occ
        proc.clock += occupancy
        proc.stats.recv_overhead += occupancy
        if self._fast:
            memo = self._effmemo.get(id(eff))
            if memo is None:
                into_var, into_sec = eff.destination()
                nk = (eff.kind, eff.var, eff.sec)
                name = self._names.get(nk)
                if name is None:
                    name = self._names[nk] = MessageName(eff.var, eff.sec)
                self._effmemo[id(eff)] = (eff, name, nk, into_var, into_sec)
            else:
                _, name, nk, into_var, into_sec = memo
        else:
            into_var, into_sec = eff.destination()
            nk = (eff.kind, eff.var, eff.sec)
            name = self._names.get(nk)
            if name is None:
                name = self._names[nk] = MessageName(eff.var, eff.sec)
        if eff.kind is TransferKind.VALUE:
            st.begin_value_receive(into_var, into_sec)
        else:
            st.acquire_ownership(into_var, into_sec, transitional=True)
        recv = PendingRecv(
            next(core._seq), proc.pid, proc.clock, eff.kind, name,
            into_var, into_sec,
        )
        if core.trace_enabled:
            core._emit(
                proc.clock, proc.pid, self.recv_event,
                f"{eff.kind.value} {name}",
            )
        pool = self._unclaimed.get(nk)
        if pool is not None:
            msg = pool.claim_for(proc.pid)
            if msg is not None:
                if not pool.live:
                    del self._unclaimed[nk]
                self._match(msg, recv)
                return
        # Single-use tags (the common case for fine-grained transfers)
        # never pay for a RecvIndex: the first pending receive is stored
        # bare and only a second same-tag receive promotes to an index.
        pending = self._pending
        cur = pending.get(nk)
        if cur is None:
            pending[nk] = recv
        elif cur.__class__ is RecvIndex:
            cur.add(recv)
        else:
            index = pending[nk] = RecvIndex()
            index.add(cur)
            index.add(recv)

    def route(self, msg: Message) -> None:
        name = msg.name
        if self._fast:
            # Interned names are pinned in ``_names`` for the whole run,
            # so their ids are stable route-key handles.
            key = self._keymemo.get(id(name))
            if key is None:
                key = self._keymemo[id(name)] = (msg.kind, name.var, name.sec)
        else:
            key = (msg.kind, name.var, name.sec)
        index = self._pending.get(key)
        if index is not None:
            if index.__class__ is RecvIndex:
                recv = (
                    index.claim_any() if msg.dst is None
                    else index.claim_for(msg.dst)
                )
                if recv is not None:
                    if not index.live:
                        del self._pending[key]
                    self._match(msg, recv)
                    return
            elif msg.dst is None or msg.dst == index.pid:
                del self._pending[key]
                self._match(msg, index)
                return
        pool = self._unclaimed.get(key)
        if pool is None:
            pool = self._unclaimed[key] = MessagePool()
        pool.add(msg)

    def _match(self, msg: Message, recv: PendingRecv) -> None:
        self.core.complete(msg, recv, self.completion_time(msg, recv))

    def on_crash(self, proc: "_Proc") -> None:
        for key in list(self._pending):
            index = self._pending[key]
            if index.__class__ is not RecvIndex:
                if index.pid == proc.pid:
                    del self._pending[key]
                continue
            while index.claim_for(proc.pid) is not None:
                pass
            if not index.live:
                del self._pending[key]

    # -- diagnostics ---------------------------------------------------- #

    def unclaimed_count(self) -> int:
        return sum(len(q) for q in self._unclaimed.values())

    def unmatched_count(self) -> int:
        return sum(
            len(q) if q.__class__ is RecvIndex else 1
            for q in self._pending.values()
        )

    def pending_by_pid(self) -> dict[int, list[tuple[float, str]]]:
        out: dict[int, list[tuple[float, str]]] = {}
        for (kind, _var, _sec), index in self._pending.items():
            rs = index if index.__class__ is RecvIndex else (index,)
            for r in rs:
                out.setdefault(r.pid, []).append((
                    r.init_time,
                    f"{kind.value} {r.name} (into {r.into_var}{r.into_sec}, "
                    f"posted t={r.init_time:.2f})",
                ))
        return out

    def unclaimed_listing(self) -> Iterator[str]:
        for _, pool in sorted(
            self._unclaimed.items(),
            key=lambda kv: (kv[0][0].value, f"{kv[0][1]}{kv[0][2]}"),
        ):
            for m in pool:
                yield str(m)
