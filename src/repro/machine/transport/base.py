"""The ``Transport`` protocol and the shared tag-rendezvous machinery.

A transport is the engine's binding of XDP transfer effects to concrete
communication primitives (paper section 5).  The scheduler core calls
``send`` / ``recv_init`` / ``on_crash`` / ``reset`` and asks for
diagnostics; the transport calls back
:meth:`~repro.machine.scheduler.Scheduler.complete` once a transfer's
completion time is bound.  Injection of each transmitted copy goes
through ``self.injector.inject(msg, nbytes)`` so middleware (fault
injection, reliable delivery) can interpose on any backend.

:class:`TagTransport` implements the rendezvous relation both shipped
backends share — FIFO-by-seq matching per ``(kind, name)`` tag, with
directed traffic split per destination and undirected traffic claimable
by anyone — and leaves the *binding* to subclasses: wire size, occupancy
and transit costs, completion-time rule, and trace vocabulary.  Keeping
the relation identical across backends is what guarantees result
transparency (same final arrays, different timings); see docs/BACKENDS.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ...core.errors import OwnershipError
from ...core.sections import Section
from ..effects import RecvInit, Send
from ..message import Message, MessageName, MessagePool, TransferKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scheduler import Scheduler, _Proc

__all__ = ["PendingRecv", "RecvIndex", "TagTransport", "Transport"]


@dataclass
class PendingRecv:
    """One posted receive (msg backend) or prefetch fence (shmem backend)."""

    seq: int
    pid: int
    init_time: float
    kind: TransferKind
    name: MessageName
    into_var: str
    into_sec: Section
    claimed: bool = field(default=False, compare=False)


class RecvIndex:
    """Pending receives for one ``(kind, name)`` tag, claimable two ways.

    An arriving *unspecified-destination* message must match the earliest
    pending receive overall; a *directed* message must match the earliest
    pending receive posted by its destination.  Each receive therefore
    appears in two FIFO queues — the global one and its processor's — and
    a claim through either marks it ``claimed`` so the other queue skips
    the husk lazily.  Both claim paths are amortized O(1).
    """

    __slots__ = ("fifo", "by_pid", "live")

    def __init__(self) -> None:
        self.fifo: deque[PendingRecv] = deque()
        self.by_pid: dict[int, deque[PendingRecv]] = {}
        self.live = 0

    def __len__(self) -> int:
        return self.live

    def __iter__(self) -> Iterator[PendingRecv]:
        """Unclaimed pending receives in seq order (diagnostics only)."""
        return (r for r in self.fifo if not r.claimed)

    def add(self, recv: PendingRecv) -> None:
        self.fifo.append(recv)
        self.by_pid.setdefault(recv.pid, deque()).append(recv)
        self.live += 1

    @staticmethod
    def _pop_live(queue: deque[PendingRecv] | None) -> PendingRecv | None:
        while queue:
            recv = queue.popleft()
            if not recv.claimed:
                recv.claimed = True
                return recv
        return None

    def claim_any(self) -> PendingRecv | None:
        """Pop the earliest unclaimed receive regardless of processor."""
        recv = self._pop_live(self.fifo)
        if recv is not None:
            self.live -= 1
        return recv

    def claim_for(self, pid: int) -> PendingRecv | None:
        """Pop the earliest unclaimed receive posted by ``pid``."""
        recv = self._pop_live(self.by_pid.get(pid))
        if recv is not None:
            self.live -= 1
        return recv


class Transport:
    """Interface between the scheduler core and a communication backend.

    Subclasses (or middleware) must provide the traffic operations; the
    class attributes name the backend's primitives in traces and
    diagnostics.  ``injector`` is the entry point of the middleware chain
    for each transmitted copy — it is ``self`` for a bare transport and
    the outermost middleware once wrapped.
    """

    #: Backend name as used by ``--backend`` and ``RunStats`` consumers.
    name = "?"
    #: Trace-event vocabulary (msg: send/recv-init/recv-done).
    send_event = "send"
    recv_event = "recv-init"
    completion_event = "recv-done"
    #: Deadlock-report vocabulary.
    pending_label = "pending receive"
    pool_header = "unclaimed message pool:"

    def __init__(self) -> None:
        self.core: "Scheduler | None" = None
        self.injector: "Transport" = self

    def bind(self, core: "Scheduler") -> None:
        """Attach to the scheduler core (seq numbers, rng, model, emit)."""
        self.core = core

    # -- per-run lifecycle --------------------------------------------- #

    def reset(self) -> None:
        """Drop all transport-private per-run state (pools, fences)."""
        raise NotImplementedError

    # -- traffic -------------------------------------------------------- #

    def send(self, proc: "_Proc", eff: Send) -> None:
        raise NotImplementedError

    def recv_init(self, proc: "_Proc", eff: RecvInit) -> None:
        raise NotImplementedError

    def inject(self, msg: Message, nbytes: int) -> None:
        """Put one transmitted copy on the network (middleware seam)."""
        self.route(msg)

    def route(self, msg: Message) -> None:
        """Deliver one arrived copy: match a pending receive or queue it."""
        raise NotImplementedError

    def transit(self, nbytes: int) -> float:
        """Departure-to-arrival delay of one copy (used by middleware)."""
        raise NotImplementedError

    def on_crash(self, proc: "_Proc") -> None:
        """Withdraw the crashed processor's pending obligations."""
        raise NotImplementedError

    # -- diagnostics ---------------------------------------------------- #

    def unclaimed_count(self) -> int:
        raise NotImplementedError

    def unmatched_count(self) -> int:
        raise NotImplementedError

    def pending_by_pid(self) -> dict[int, list[tuple[float, str]]]:
        raise NotImplementedError

    def unclaimed_listing(self) -> Iterator[str]:
        raise NotImplementedError


class TagTransport(Transport):
    """Shared rendezvous machinery: FIFO-by-seq matching per tag.

    Subclasses bind the costs and vocabulary:

    * :meth:`wire_bytes` — bytes one copy occupies on the wire;
    * :meth:`send_occupancy` / :meth:`recv_occupancy` — processor
      overhead charged at initiation;
    * :meth:`transit` — departure-to-arrival delay;
    * :meth:`completion_time` — when the matched pair completes.
    """

    def reset(self) -> None:
        self._unclaimed: dict[tuple[TransferKind, MessageName], MessagePool] = {}
        self._pending: dict[tuple[TransferKind, MessageName], RecvIndex] = {}

    # -- binding hooks -------------------------------------------------- #

    def wire_bytes(self, payload: np.ndarray | None) -> int:
        raise NotImplementedError

    def send_occupancy(self, nbytes: int) -> float:
        raise NotImplementedError

    def recv_occupancy(self) -> float:
        raise NotImplementedError

    def completion_time(self, msg: Message, recv: PendingRecv) -> float:
        return max(recv.init_time, msg.arrive_time)

    # -- traffic -------------------------------------------------------- #

    def send(self, proc: "_Proc", eff: Send) -> None:
        core = self.core
        st = proc.ctx.symtab
        name = MessageName(eff.var, eff.sec)
        if eff.kind is TransferKind.VALUE:
            # "E ->": E must be an exclusive section owned by p.  No
            # accessibility check — XDP does not test state automatically.
            if not st.iown(eff.var, eff.sec):
                raise OwnershipError(
                    f"P{proc.pid + 1} sends unowned section {name}"
                )
            payload: np.ndarray | None = st.read(eff.var, eff.sec)
        else:
            # Owner sends block until accessible; the program yields a
            # WaitAccessible first, and release_ownership re-validates.
            payload = st.release_ownership(
                eff.var, eff.sec, with_value=eff.kind is TransferKind.OWN_VALUE
            )

        # Multicast is *serialized injection*: the sender's clock (and its
        # send overhead) accumulates the per-copy occupancy BEFORE each
        # copy is stamped, so the i-th destination's send_time and
        # arrive_time are one occupancy later than the (i-1)-th — one
        # network interface (or store buffer) injecting the copies
        # back-to-back.  Pinned by
        # tests/test_engine.py::TestValueTransfer::test_multicast_serialized_injection;
        # do not "optimize" this into a single timestamp.
        dests = eff.dests if eff.dests is not None else (None,)
        for dst in dests:
            nbytes = self.wire_bytes(payload)
            occupancy = self.send_occupancy(nbytes)
            proc.clock += occupancy
            proc.stats.send_overhead += occupancy
            msg = Message(
                seq=next(core._seq),
                kind=eff.kind,
                name=name,
                payload=None if payload is None else payload.copy(),
                src=proc.pid,
                dst=dst,
                send_time=proc.clock,
                arrive_time=proc.clock + self.transit(nbytes),
            )
            proc.stats.msgs_sent += 1
            proc.stats.bytes_sent += nbytes
            core._emit(proc.clock, proc.pid, self.send_event, str(msg))
            self.injector.inject(msg, nbytes)

    def recv_init(self, proc: "_Proc", eff: RecvInit) -> None:
        core = self.core
        st = proc.ctx.symtab
        occupancy = self.recv_occupancy()
        proc.clock += occupancy
        proc.stats.recv_overhead += occupancy
        into_var, into_sec = eff.destination()
        name = MessageName(eff.var, eff.sec)
        if eff.kind is TransferKind.VALUE:
            st.begin_value_receive(into_var, into_sec)
        else:
            st.acquire_ownership(into_var, into_sec, transitional=True)
        recv = PendingRecv(
            seq=next(core._seq),
            pid=proc.pid,
            init_time=proc.clock,
            kind=eff.kind,
            name=name,
            into_var=into_var,
            into_sec=into_sec,
        )
        core._emit(proc.clock, proc.pid, self.recv_event, f"{eff.kind.value} {name}")
        key = (eff.kind, name)
        pool = self._unclaimed.get(key)
        if pool is not None:
            msg = pool.claim_for(proc.pid)
            if msg is not None:
                if not pool.live:
                    del self._unclaimed[key]
                self._match(msg, recv)
                return
        index = self._pending.get(key)
        if index is None:
            index = self._pending[key] = RecvIndex()
        index.add(recv)

    def route(self, msg: Message) -> None:
        key = (msg.kind, msg.name)
        index = self._pending.get(key)
        if index is not None:
            recv = (
                index.claim_any() if msg.dst is None
                else index.claim_for(msg.dst)
            )
            if recv is not None:
                if not index.live:
                    del self._pending[key]
                self._match(msg, recv)
                return
        pool = self._unclaimed.get(key)
        if pool is None:
            pool = self._unclaimed[key] = MessagePool()
        pool.add(msg)

    def _match(self, msg: Message, recv: PendingRecv) -> None:
        self.core.complete(msg, recv, self.completion_time(msg, recv))

    def on_crash(self, proc: "_Proc") -> None:
        for key in list(self._pending):
            index = self._pending[key]
            while index.claim_for(proc.pid) is not None:
                pass
            if not index.live:
                del self._pending[key]

    # -- diagnostics ---------------------------------------------------- #

    def unclaimed_count(self) -> int:
        return sum(len(q) for q in self._unclaimed.values())

    def unmatched_count(self) -> int:
        return sum(len(q) for q in self._pending.values())

    def pending_by_pid(self) -> dict[int, list[tuple[float, str]]]:
        out: dict[int, list[tuple[float, str]]] = {}
        for (kind, name), index in self._pending.items():
            for r in index:
                out.setdefault(r.pid, []).append((
                    r.init_time,
                    f"{kind.value} {name} (into {r.into_var}{r.into_sec}, "
                    f"posted t={r.init_time:.2f})",
                ))
        return out

    def unclaimed_listing(self) -> Iterator[str]:
        for _, pool in sorted(
            self._unclaimed.items(), key=lambda kv: (kv[0][0].value, str(kv[0][1]))
        ):
            for m in pool:
                yield str(m)
