"""Transport middleware: fault injection and reliable delivery.

Both were originally welded into the engine's send path; they are now
decorators over any base transport.  A middleware interposes on the
per-copy injection seam — the base transport stamps each transmitted
copy and hands it to ``self.injector.inject(msg, nbytes)``, which is the
*outermost* middleware of the stack; each layer transforms the copy and
passes it inward until the base transport's ``inject`` routes it.

Determinism: every stochastic decision draws from the scheduler core's
single per-run ``random.Random(seed)`` in exactly the order of the
original engine code (drop → jitter → route → duplicate → dup-jitter on
the raw path; the analytic reliable exchange otherwise), so seeded runs
remain bit-identical with pre-refactor behavior.  See docs/FAULTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ...core.errors import TransportError
from ..faults import FaultModel
from ..message import Message
from ..reliable import ReliableTransport
from .base import Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..effects import RecvInit, Send
    from ..scheduler import Scheduler, _Proc

__all__ = ["FaultInjection", "ReliableDelivery", "TransportMiddleware"]


class TransportMiddleware(Transport):
    """Delegating wrapper around an inner transport.

    Wrapping re-points the *base* transport's ``injector`` at the new
    outermost layer, so copies always enter the stack from the outside;
    middleware layers pass them inward via ``self.inner.inject``.
    """

    def __init__(self, inner: Transport):
        super().__init__()
        self.inner = inner
        base = inner
        while isinstance(base, TransportMiddleware):
            base = base.inner
        self.base = base
        base.injector = self

    # -- vocabulary follows the wrapped backend -------------------------- #

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def send_event(self) -> str:  # type: ignore[override]
        return self.inner.send_event

    @property
    def recv_event(self) -> str:  # type: ignore[override]
        return self.inner.recv_event

    @property
    def completion_event(self) -> str:  # type: ignore[override]
        return self.inner.completion_event

    @property
    def pending_label(self) -> str:  # type: ignore[override]
        return self.inner.pending_label

    @property
    def pool_header(self) -> str:  # type: ignore[override]
        return self.inner.pool_header

    # -- delegation ------------------------------------------------------ #

    def bind(self, core: "Scheduler") -> None:
        self.core = core
        self.inner.bind(core)

    def reset(self) -> None:
        self.inner.reset()

    def send(self, proc: "_Proc", eff: "Send") -> None:
        self.inner.send(proc, eff)

    def recv_init(self, proc: "_Proc", eff: "RecvInit") -> None:
        self.inner.recv_init(proc, eff)

    def inject(self, msg: Message, nbytes: int) -> None:
        self.inner.inject(msg, nbytes)

    def route(self, msg: Message) -> None:
        self.inner.route(msg)

    def transit(self, nbytes: int) -> float:
        return self.inner.transit(nbytes)

    def on_crash(self, proc: "_Proc") -> None:
        self.inner.on_crash(proc)

    def unclaimed_count(self) -> int:
        return self.inner.unclaimed_count()

    def unmatched_count(self) -> int:
        return self.inner.unmatched_count()

    def pending_by_pid(self) -> dict[int, list[tuple[float, str]]]:
        return self.inner.pending_by_pid()

    def unclaimed_listing(self) -> Iterator[str]:
        return self.inner.unclaimed_listing()


class FaultInjection(TransportMiddleware):
    """Raw lossy network: faults reach the program.

    Injection-time fault-model consult for one transmitted copy: a
    dropped copy vanishes, a duplicated copy is routed twice (the
    duplicate can mismatch a later receive — the paper's section-2.7
    'unpredictable results', which the engine reports as
    :class:`ProtocolError`), a delayed copy arrives late.
    """

    def __init__(self, inner: Transport, faults: FaultModel):
        super().__init__(inner)
        self.faults = faults

    def inject(self, msg: Message, nbytes: int) -> None:
        core = self.core
        spec = self.faults.spec_for(msg.name)
        rng = core._rng
        if spec.drop and rng.random() < spec.drop:
            core._dropped += 1
            core._emit(msg.send_time, msg.src, "drop", str(msg))
            return
        if spec.delay and rng.random() < spec.delay:
            msg.arrive_time += rng.random() * spec.max_jitter
        self.inner.inject(msg, nbytes)
        if spec.duplicate and rng.random() < spec.duplicate:
            dup = Message(
                seq=next(core._seq),
                kind=msg.kind,
                name=msg.name,
                payload=None if msg.payload is None else msg.payload.copy(),
                src=msg.src,
                dst=msg.dst,
                send_time=msg.send_time,
                arrive_time=msg.arrive_time,
                attempt=1,
            )
            if spec.delay and rng.random() < spec.delay:
                dup.arrive_time = msg.send_time + (
                    self.base.transit(nbytes) + rng.random() * spec.max_jitter
                )
            core._duplicated += 1
            core._emit(dup.send_time, dup.src, "dup", str(dup))
            self.inner.inject(dup, nbytes)


class ReliableDelivery(TransportMiddleware):
    """Exact delivery over a lossy network via ack/timeout/retransmit.

    The exchange is played out analytically at injection time (see
    reliable.py): the copy always reaches the matching layer — at the
    first surviving transmission's arrival time — or the retransmit
    budget dies and a :class:`TransportError` surfaces.  The fault model
    consulted is the scheduler core's (normalized to
    :meth:`FaultModel.none` when reliable is configured alone).
    """

    def __init__(self, inner: Transport, reliable: ReliableTransport):
        super().__init__(inner)
        self.reliable = reliable

    def inject(self, msg: Message, nbytes: int) -> None:
        core = self.core
        spec = core.faults.spec_for(msg.name)
        outcome = self.reliable.transmit(
            send_time=msg.send_time,
            latency=self.base.transit(nbytes),
            ack_latency=core.model.ack_cost(),
            spec=spec,
            rng=core._rng,
        )
        if outcome.delivery is None:
            raise TransportError(
                f"transport failure: {msg} lost after {outcome.attempts} "
                f"transmissions (retransmit budget "
                f"{self.reliable.max_retries} exhausted)",
                name=msg.name,
                src=msg.src,
                dst=msg.dst,
                attempts=outcome.attempts,
            )
        core._retransmits += outcome.retransmits
        core._dups_suppressed += len(outcome.duplicates)
        if outcome.acked_at is not None:
            core._acks += 1
        if outcome.retransmits:
            core._emit(
                outcome.delivery, msg.src, "retransmit",
                f"{msg} delivered on attempt {outcome.attempts}",
            )
        for dup_at in outcome.duplicates:
            core._emit(dup_at, msg.src, "dup-suppressed", str(msg))
        msg.arrive_time = outcome.delivery
        msg.attempt = outcome.attempts
        self.inner.inject(msg, nbytes)
