"""The shared-address transport backend (``shmem``).

The second half of the paper's section-5 delayed binding: on a
shared-address machine (the paper names the KSR1) "receives and sends
might be translated as prefetch and poststore instructions".  Here:

* ``E ->`` / ``E =>`` becomes a non-blocking **poststore**: the producer
  issues a store of the section into the global address space (cost:
  :meth:`~repro.machine.model.MachineModel.post_occupancy` — issue plus
  per-line store-buffer drain) and continues immediately; the lines
  become resident after
  :meth:`~repro.machine.model.MachineModel.store_cost`.  A *bound*
  destination (from the ``DestinationBinding`` pass's owner arithmetic)
  pushes the lines all the way into the consumer's cache; an unbound
  store leaves them at their home node.
* ``U <-`` / ``U <=`` becomes a non-blocking **prefetch**: the consumer
  posts a fence for the named section (cost ``o_prefetch``) and
  continues; ``await`` binds to the fence's completion.
* The fence completes at ``max(prefetch, store-resident)`` — plus a
  :meth:`~repro.machine.model.MachineModel.pull_cost` penalty when the
  store was unbound and the lines must still travel home→consumer.

There is **no marshalled header**: the name tag *is* the address (the
section's place in the global address space), so a copy occupies exactly
its payload bytes.  The rendezvous relation itself — FIFO by seq per
``(kind, name)`` tag — is inherited unchanged from
:class:`~repro.machine.transport.base.TagTransport`; that the relation
is identical across backends is precisely the paper's argument for why
delayed binding is semantics-preserving (result transparency), and the
engine's cross-backend bit-identity tests check it.
"""

from __future__ import annotations

import numpy as np

from ..message import Message
from .base import PendingRecv, TagTransport

__all__ = ["SharedAddressTransport"]


class SharedAddressTransport(TagTransport):
    """Sends and receives bind to non-blocking poststore / prefetch."""

    name = "shmem"
    send_event = "poststore"
    recv_event = "prefetch"
    completion_event = "fence"
    pending_label = "pending fence"
    pool_header = "unfenced store buffer:"

    def reset(self) -> None:
        super().reset()
        # Snapshot the (immutable) model constants so the per-copy cost
        # hooks are plain attribute reads; arithmetic stays bit-identical
        # to the MachineModel methods they inline.
        model = self.core.model
        self._o_post = model.o_post
        self._o_prefetch = model.o_prefetch
        self._line_issue = model.line_issue
        self._line_bytes = model.line_bytes
        self._mem_latency = model.mem_latency
        self._per_byte = model.per_byte
        self._recv_occ = self.recv_occupancy()

    def wire_bytes(self, payload: np.ndarray | None) -> int:
        # The tag is the address — nothing but the data crosses the wire.
        return 0 if payload is None else payload.nbytes

    def send_occupancy(self, nbytes: int) -> float:
        # Inline of MachineModel.post_occupancy.
        return self._o_post + self._line_issue * max(
            1, -(-nbytes // self._line_bytes)
        )

    def recv_occupancy(self) -> float:
        return self._o_prefetch

    def transit(self, nbytes: int) -> float:
        # Inline of MachineModel.store_cost.
        return self._mem_latency + nbytes * self._per_byte

    def completion_time(self, msg: Message, recv: PendingRecv) -> float:
        ctime = max(recv.init_time, msg.arrive_time)
        if msg.dst is None:
            # Unbound store: resident at its home, not at the consumer —
            # the fence pays the home-to-consumer pull.  This is the cost
            # asymmetry DestinationBinding's owner arithmetic removes.
            # (Inline of MachineModel.pull_cost.)
            ctime += self._mem_latency + msg.nbytes * self._per_byte
        return ctime
