"""Pluggable transport backends for the SPMD engine (paper section 5).

The paper delays the binding of XDP transfer operations to concrete
communication primitives until code generation: "on a shared-address
computer such as the KSR1, receives and sends might be translated as
prefetch and poststore instructions; on a message-passing machine, they
would become calls to the communication primitives".  This package is
that binding point at run time:

* :class:`MessagePassingTransport` (``msg``) — sends become messages with
  a marshalled header, routed through per-destination FIFO channels and a
  global unclaimed pool;
* :class:`SharedAddressTransport` (``shmem``) — sends become non-blocking
  ``poststore`` operations into a global address space, receives become
  ``prefetch`` operations, and ``await`` binds to a completion *fence*;
* :class:`ProcTransport` (``proc``) — the same message-passing binding,
  but executed for real: the engine facade forks one OS process per
  simulated processor and moves data over pipes and
  ``multiprocessing.shared_memory`` segments, with the in-process
  simulation retained as the semantic oracle (see
  :mod:`repro.machine.procrt`);
* :class:`FaultInjection` / :class:`ReliableDelivery` — middleware that
  wraps any backend to make the network lossy or to restore exact
  delivery over a lossy network.

Both backends realize the *same* abstract rendezvous relation (FIFO by
sequence number per ``(kind, name)`` tag — see
:class:`~repro.machine.transport.base.TagTransport`), which is what makes
programs *result-transparent* across backends: only costs, primitive
names, and diagnostics differ.  See docs/BACKENDS.md.
"""

from __future__ import annotations

import os

from .base import PendingRecv, RecvIndex, TagTransport, Transport
from .middleware import FaultInjection, ReliableDelivery, TransportMiddleware
from .msg import HEADER_BYTES, MessagePassingTransport
from .proc import ProcTransport
from .shmem import SharedAddressTransport

__all__ = [
    "BACKENDS",
    "SIM_BACKENDS",
    "HEADER_BYTES",
    "FaultInjection",
    "MessagePassingTransport",
    "PendingRecv",
    "ProcTransport",
    "RecvIndex",
    "ReliableDelivery",
    "SharedAddressTransport",
    "TagTransport",
    "Transport",
    "TransportMiddleware",
    "default_backend",
    "make_transport",
]

#: The backend names accepted everywhere a backend can be chosen.
BACKENDS = ("msg", "shmem", "proc")

#: The purely simulated backends — benchmarks and tests that measure or
#: inspect *simulator* behavior (virtual-time makespans, transport-private
#: state) iterate these; ``proc`` executes on real processes and is
#: exercised by its own contract/differential suites.
SIM_BACKENDS = ("msg", "shmem")


def default_backend() -> str:
    """The session-wide default backend (``REPRO_BACKEND``, else msg)."""
    return os.environ.get("REPRO_BACKEND", "msg")


def make_transport(backend: str | None = None) -> Transport:
    """Build a fresh base transport for ``backend`` (None: the default)."""
    if backend is None:
        backend = default_backend()
    if backend == "msg":
        return MessagePassingTransport()
    if backend == "shmem":
        return SharedAddressTransport()
    if backend == "proc":
        return ProcTransport()
    raise ValueError(
        f"unknown backend {backend!r} (choose from {', '.join(BACKENDS)})"
    )
