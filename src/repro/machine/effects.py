"""Effects: the interface between node programs and the engine.

A node program (the reference interpreter of :mod:`repro.core.interp` or
the lowered instruction stream of :mod:`repro.core.codegen`) runs as a
Python generator that *yields* effects; the discrete-event engine consumes
them, advances virtual time, performs communication, and resumes the
generator.  This realises the paper's central separation: local computation
(``Compute``) is a different effect from data transfer (``Send`` /
``RecvInit``), so the engine can overlap them and account for each.

Synchronisation is a single primitive, ``WaitAccessible`` — the blocking
behaviour of ``await()``, of owner sends ("blocks until E is accessible")
and of value receives into transitional sections is expressed by the
program yielding it before the operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.sections import Section
from .message import TransferKind

__all__ = ["Compute", "Send", "RecvInit", "WaitAccessible", "Log", "Effect"]


@dataclass(frozen=True, slots=True)
class Compute:
    """Local computation occupying the processor for ``cost`` time units."""

    cost: float
    flops: int = 0
    what: str = ""


@dataclass(frozen=True, slots=True)
class Send:
    """Initiation of a send statement.

    ``dests=None`` is the unspecified-recipient form (``E ->``); a tuple of
    pids is the annotated/multicast form (``E -> S``).  ``payload`` is the
    gathered value for value-moving kinds, ``None`` for ``E =>``.
    For ownership-moving kinds the engine performs the symbol-table release
    (the program must have awaited accessibility first).
    """

    kind: TransferKind
    var: str
    sec: Section
    dests: tuple[int, ...] | None = None


@dataclass(frozen=True, slots=True)
class RecvInit:
    """Initiation of a receive statement.

    ``var``/``sec`` name the *message* being claimed (the send side's name
    tag).  For a value receive (``E <- X``), ``into_var``/``into_sec``
    designate the owned destination section E; for ownership receives they
    equal the message name (``U``)."""

    kind: TransferKind
    var: str
    sec: Section
    into_var: str = ""
    into_sec: Section | None = None

    def destination(self) -> tuple[str, Section]:
        if self.into_sec is None:
            return self.var, self.sec
        return self.into_var, self.into_sec


@dataclass(frozen=True, slots=True)
class WaitAccessible:
    """Block until the named section is accessible on this processor."""

    var: str
    sec: Section


@dataclass(frozen=True, slots=True)
class Log:
    """A trace-visible message from the program (used by the debugger-
    monitor example; costs nothing)."""

    text: str
    payload: tuple = field(default_factory=tuple)


Effect = Compute | Send | RecvInit | WaitAccessible | Log
