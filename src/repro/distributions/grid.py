"""Processor grids.

The paper's example implementation assumes "a fixed, known processor grid"
(section 3).  Processors are identified by a unique integer ``mypid``; for
multi-dimensional grids the paper numbers processors in Fortran
(column-major) order and labels them 1-based (``P1..P4``): in Figure 3 and
the section-3.1 example, processor *P3* of a 2x2 grid owns the top-right
quadrant, which is grid coordinate ``(0, 1)`` — the column-major rank-2
position.  We keep pids 0-based internally and render the paper's 1-based
labels only in :mod:`repro.report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from ..core.errors import DistributionError

__all__ = ["ProcessorGrid"]


@dataclass(frozen=True)
class ProcessorGrid:
    """A fixed ``d``-dimensional grid of processors.

    Parameters
    ----------
    shape:
        Extent of the grid along each dimension, e.g. ``(2, 2)``.
    order:
        ``"F"`` (column-major, the paper's numbering) or ``"C"``
        (row-major).  Controls the pid ↔ coordinate mapping only.
    """

    shape: tuple[int, ...]
    order: str = "F"
    _strides: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.shape, tuple):
            object.__setattr__(self, "shape", tuple(self.shape))
        if not self.shape or any(n < 1 for n in self.shape):
            raise DistributionError(f"invalid grid shape {self.shape}")
        if self.order not in ("F", "C"):
            raise DistributionError(f"grid order must be 'F' or 'C', got {self.order!r}")
        strides: list[int] = []
        acc = 1
        dims = self.shape if self.order == "F" else tuple(reversed(self.shape))
        for n in dims:
            strides.append(acc)
            acc *= n
        if self.order == "C":
            strides.reverse()
        object.__setattr__(self, "_strides", tuple(strides))

    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Total number of processors."""
        return math.prod(self.shape)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def pids(self) -> range:
        return range(self.size)

    def pid_of(self, coords: tuple[int, ...]) -> int:
        """Linear pid of a grid coordinate."""
        if len(coords) != self.rank:
            raise DistributionError(
                f"coordinate rank {len(coords)} != grid rank {self.rank}"
            )
        for c, n in zip(coords, self.shape):
            if not 0 <= c < n:
                raise DistributionError(f"coordinate {coords} outside grid {self.shape}")
        return sum(c * s for c, s in zip(coords, self._strides))

    def coords_of(self, pid: int) -> tuple[int, ...]:
        """Grid coordinate of a linear pid."""
        if not 0 <= pid < self.size:
            raise DistributionError(f"pid {pid} outside grid of size {self.size}")
        return tuple(
            (pid // self._strides[ax]) % self.shape[ax] for ax in range(self.rank)
        )

    def iter_coords(self) -> Iterator[tuple[int, ...]]:
        """All coordinates, in pid order."""
        for pid in self.pids():
            yield self.coords_of(pid)

    def reshaped(self, shape: tuple[int, ...]) -> "ProcessorGrid":
        """A grid over the same processors with a different logical shape.

        Used when a distribution uses fewer distributed dimensions than the
        physical grid has (e.g. ``(*, BLOCK)`` on a 2x2 grid treats the four
        processors as a linear array — paper Figure 2's array ``A``).
        """
        if math.prod(shape) != self.size:
            raise DistributionError(
                f"cannot reshape grid of {self.size} processors to {shape}"
            )
        return ProcessorGrid(tuple(shape), self.order)

    def label(self, pid: int) -> str:
        """The paper's 1-based label for a pid (``P1`` .. ``Pn``)."""
        return f"P{pid + 1}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "x".join(str(n) for n in self.shape) + f" grid ({self.order}-order)"
