"""HPF-style data distributions.

The paper's implementation section assumes "partitioning as allowed in HPF"
(section 3, citing the HPF language specification): each array dimension is
distributed ``BLOCK``, ``CYCLIC``, ``CYCLIC(k)`` (block-cyclic) or ``*``
(collapsed / not distributed).  A :class:`Distribution` binds per-dimension
specs to a processor grid and answers the two questions the compiler and
run-time need:

* *who owns* a given element / section (compile-time ownership analysis,
  and the naive owner-computes translation), and
* *what does processor p own* (run-time symbol-table construction,
  segmentation, and figure regeneration).

Every element of a distributed array is exclusively owned by exactly one
processor; the distributed dimensions are mapped onto a *distribution grid*
whose total size must equal the processor count, so ownership is both
exclusive and total.  Replicated (universally owned) variables are handled
separately by the machine model, not by distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..core.errors import DistributionError
from ..core.sections import Section, Triplet
from .grid import ProcessorGrid

__all__ = [
    "DimSpec",
    "Block",
    "Cyclic",
    "BlockCyclic",
    "Collapsed",
    "Distribution",
    "parse_dist_spec",
]


class DimSpec:
    """Distribution of one array dimension over ``nprocs`` grid positions."""

    #: True for ``*`` — the dimension is not distributed.
    collapsed: bool = False

    def owner_coord(self, index: int, lo: int, hi: int, nprocs: int) -> int:
        """Grid position (0-based) owning global ``index`` in ``lo..hi``."""
        raise NotImplementedError

    def owned(self, q: int, lo: int, hi: int, nprocs: int) -> tuple[Triplet, ...]:
        """The (possibly several) index progressions owned by position ``q``.

        ``BLOCK``/``CYCLIC``/``*`` each yield at most one triplet;
        block-cyclic yields one triplet per owned block.
        """
        raise NotImplementedError

    def spec_str(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.spec_str()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(other, "__dict__", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class Block(DimSpec):
    """``BLOCK``: contiguous chunks of ``ceil(N/P)`` elements.

    Matches the HPF definition: processor ``q`` owns global indices
    ``lo + q*bs .. min(hi, lo + (q+1)*bs - 1)`` with ``bs = ceil(N/P)``;
    trailing processors may own nothing when ``N < P*bs``.
    """

    def _bs(self, lo: int, hi: int, nprocs: int) -> int:
        n = hi - lo + 1
        return -(-n // nprocs)

    def owner_coord(self, index: int, lo: int, hi: int, nprocs: int) -> int:
        return (index - lo) // self._bs(lo, hi, nprocs)

    def owned(self, q: int, lo: int, hi: int, nprocs: int) -> tuple[Triplet, ...]:
        bs = self._bs(lo, hi, nprocs)
        start = lo + q * bs
        stop = min(hi, start + bs - 1)
        if start > stop:
            return ()
        return (Triplet(start, stop, 1),)

    def spec_str(self) -> str:
        return "BLOCK"


class Cyclic(DimSpec):
    """``CYCLIC``: element ``i`` goes to position ``(i - lo) mod P``."""

    def owner_coord(self, index: int, lo: int, hi: int, nprocs: int) -> int:
        return (index - lo) % nprocs

    def owned(self, q: int, lo: int, hi: int, nprocs: int) -> tuple[Triplet, ...]:
        start = lo + q
        if start > hi:
            return ()
        return (Triplet(start, hi, nprocs),)

    def spec_str(self) -> str:
        return "CYCLIC"


class BlockCyclic(DimSpec):
    """``CYCLIC(b)``: blocks of ``b`` dealt round-robin to positions."""

    def __init__(self, blocksize: int):
        if blocksize < 1:
            raise DistributionError(f"CYCLIC blocksize must be >= 1, got {blocksize}")
        self.blocksize = blocksize

    def owner_coord(self, index: int, lo: int, hi: int, nprocs: int) -> int:
        return ((index - lo) // self.blocksize) % nprocs

    def owned(self, q: int, lo: int, hi: int, nprocs: int) -> tuple[Triplet, ...]:
        b = self.blocksize
        out: list[Triplet] = []
        start = lo + q * b
        stride = nprocs * b
        while start <= hi:
            out.append(Triplet(start, min(hi, start + b - 1), 1))
            start += stride
        return tuple(out)

    def spec_str(self) -> str:
        return f"CYCLIC({self.blocksize})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockCyclic({self.blocksize})"


class Collapsed(DimSpec):
    """``*``: the dimension is not distributed; every owner position sees
    the full extent."""

    collapsed = True

    def owner_coord(self, index: int, lo: int, hi: int, nprocs: int) -> int:
        return 0

    def owned(self, q: int, lo: int, hi: int, nprocs: int) -> tuple[Triplet, ...]:
        return (Triplet(lo, hi, 1),)

    def spec_str(self) -> str:
        return "*"


def parse_dist_spec(text: str) -> DimSpec:
    """Parse one HPF dimension spec: ``BLOCK``, ``CYCLIC``, ``CYCLIC(4)``, ``*``."""
    t = text.strip().upper()
    if t == "*":
        return Collapsed()
    if t == "BLOCK":
        return Block()
    if t == "CYCLIC":
        return Cyclic()
    if t.startswith("CYCLIC(") and t.endswith(")"):
        try:
            return BlockCyclic(int(t[7:-1]))
        except ValueError as exc:
            raise DistributionError(f"bad CYCLIC blocksize in {text!r}") from exc
    raise DistributionError(f"unknown distribution spec {text!r}")


@dataclass(frozen=True)
class Distribution:
    """A complete HPF-style partitioning of one array over a grid.

    Parameters
    ----------
    index_space:
        The declared bounds of the array, e.g. ``section((1, 4), (1, 8))``
        for the paper's ``A[1:4, 1:8]``.
    specs:
        One :class:`DimSpec` per array dimension.
    grid:
        The physical processor grid.
    dist_grid_shape:
        Shape of the grid as seen by the *distributed* (non-collapsed)
        dimensions, in order.  Its product must equal ``grid.size``.
        Defaults to ``grid.shape`` when the count of distributed dimensions
        equals the grid rank, and to the linearised ``(grid.size,)`` when
        there is exactly one distributed dimension (the paper's ``(*,
        BLOCK)`` over a 2x2 grid).  Other mismatches must be explicit.
    """

    index_space: Section
    specs: tuple[DimSpec, ...]
    grid: ProcessorGrid
    dist_grid_shape: tuple[int, ...] | None = None
    _dist_grid: ProcessorGrid = field(init=False, repr=False, compare=False)
    _dist_axes: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        if len(self.specs) != self.index_space.rank:
            raise DistributionError(
                f"{len(self.specs)} dimension specs for rank-{self.index_space.rank} array"
            )
        dist_axes = tuple(i for i, s in enumerate(self.specs) if not s.collapsed)
        if not dist_axes:
            raise DistributionError(
                "fully collapsed distribution: no dimension is distributed "
                "(use a universal variable for replicated data)"
            )
        shape = self.dist_grid_shape
        if shape is None:
            if len(dist_axes) == self.grid.rank:
                shape = self.grid.shape
            elif len(dist_axes) == 1:
                shape = (self.grid.size,)
            else:
                raise DistributionError(
                    f"{len(dist_axes)} distributed dimensions on a rank-"
                    f"{self.grid.rank} grid: pass dist_grid_shape explicitly"
                )
            object.__setattr__(self, "dist_grid_shape", tuple(shape))
        if len(shape) != len(dist_axes):
            raise DistributionError(
                f"dist_grid_shape {shape} has {len(shape)} dims but the "
                f"distribution has {len(dist_axes)} distributed dimensions"
            )
        if math.prod(shape) != self.grid.size:
            raise DistributionError(
                f"dist_grid_shape {shape} does not cover the "
                f"{self.grid.size}-processor grid exactly"
            )
        object.__setattr__(self, "_dist_grid", self.grid.reshaped(tuple(shape)))
        object.__setattr__(self, "_dist_axes", dist_axes)

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #

    @property
    def rank(self) -> int:
        return self.index_space.rank

    @property
    def nprocs(self) -> int:
        return self.grid.size

    def _dim_bounds(self, axis: int) -> tuple[int, int]:
        t = self.index_space.dims[axis]
        if t.step != 1:
            raise DistributionError("declared array bounds must be unit-stride")
        return t.lo, t.hi

    def _dim_procs(self, axis: int) -> int:
        """Grid positions along array axis (1 for collapsed axes)."""
        if self.specs[axis].collapsed:
            return 1
        return self._dist_grid.shape[self._dist_axes.index(axis)]

    # ------------------------------------------------------------------ #
    # ownership queries
    # ------------------------------------------------------------------ #

    def owner(self, point: Sequence[int]) -> int:
        """The pid exclusively owning one element."""
        if len(point) != self.rank:
            raise DistributionError(f"point rank {len(point)} != array rank {self.rank}")
        coords: list[int] = []
        for axis in self._dist_axes:
            lo, hi = self._dim_bounds(axis)
            idx = point[axis]
            if not lo <= idx <= hi:
                raise DistributionError(f"index {idx} outside dim {axis} bounds {lo}:{hi}")
            coords.append(
                self.specs[axis].owner_coord(idx, lo, hi, self._dim_procs(axis))
            )
        return self._dist_grid.pid_of(tuple(coords))

    def owner_of_section(self, sec: Section) -> int | None:
        """The single pid owning every element of ``sec``, or ``None`` if
        the section spans processors.

        Examines only the corner owners per distributed axis plus a cheap
        per-axis containment check, avoiding full enumeration.
        """
        if sec.rank != self.rank:
            raise DistributionError(f"section rank {sec.rank} != array rank {self.rank}")
        coords: list[int] = []
        for axis in self._dist_axes:
            lo, hi = self._dim_bounds(axis)
            t = sec.dims[axis]
            nprocs = self._dim_procs(axis)
            spec = self.specs[axis]
            q = spec.owner_coord(t.lo, lo, hi, nprocs)
            # Every member of the triplet must map to the same position.
            owned = spec.owned(q, lo, hi, nprocs)
            covered = 0
            for piece in owned:
                inter = piece.intersect(t)
                if inter is not None:
                    covered += inter.size
            if covered != t.size:
                return None
            coords.append(q)
        return self._dist_grid.pid_of(tuple(coords))

    def owned_pieces(self, pid: int) -> tuple[tuple[Triplet, ...], ...]:
        """Per-dimension owned index progressions for ``pid``."""
        coords = self._dist_grid.coords_of(pid)
        out: list[tuple[Triplet, ...]] = []
        for axis in range(self.rank):
            lo, hi = self._dim_bounds(axis)
            spec = self.specs[axis]
            if spec.collapsed:
                out.append(spec.owned(0, lo, hi, 1))
            else:
                q = coords[self._dist_axes.index(axis)]
                out.append(spec.owned(q, lo, hi, self._dim_procs(axis)))
        return tuple(out)

    def owned_sections(self, pid: int) -> list[Section]:
        """The owned region of ``pid`` as a list of disjoint sections
        (Cartesian product of the per-dimension pieces)."""
        pieces = self.owned_pieces(pid)
        if any(not p for p in pieces):
            return []
        out: list[Section] = []

        def rec(axis: int, dims: tuple[Triplet, ...]) -> None:
            if axis == self.rank:
                out.append(Section(dims))
                return
            for t in pieces[axis]:
                rec(axis + 1, dims + (t,))

        rec(0, ())
        return out

    def local_count(self, pid: int) -> int:
        """Number of elements owned by ``pid``."""
        return sum(s.size for s in self.owned_sections(pid))

    def iter_owners(self) -> Iterator[tuple[int, Section]]:
        """Yield ``(pid, owned_section)`` for all processors."""
        for pid in self.grid.pids():
            for sec in self.owned_sections(pid):
                yield pid, sec

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #

    def spec_str(self) -> str:
        """The HPF-style tuple, e.g. ``(*, BLOCK)``."""
        return "(" + ", ".join(s.spec_str() for s in self.specs) + ")"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.index_space} {self.spec_str()} over {self.grid}"
