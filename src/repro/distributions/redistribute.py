"""Redistribution planning (paper section 4, Figure 4).

The 3-D FFT example changes an array's partitioning from ``(*, *, BLOCK)``
to ``(*, BLOCK, *)`` using XDP ownership-transfer operations.  The compiler
artifact behind such a change is a *redistribution plan*: for every pair of
processors, which sections of the index space move.  The paper notes that
an auxiliary compile-time structure links each ``-=>`` with its matching
``<=-`` "for communication binding at code generation time"; the
:class:`RedistributionPlan` is that structure.

Plans can be computed at element-exact granularity (intersections of owned
regions) or at *segment* granularity, where each source segment is cut
against the destination distribution so each piece has a single receiver —
this is what enables the pipelined, per-segment transfer the paper
illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.errors import DistributionError
from ..core.sections import Section
from .layout import Distribution
from .segmentation import Segmentation

__all__ = ["Move", "RedistributionPlan", "plan_redistribution"]


@dataclass(frozen=True)
class Move:
    """One ownership transfer: ``section`` moves from ``src`` to ``dst``.

    Moves with ``src == dst`` never appear in a plan — data already in
    place requires no transfer (the compiler's "transfer elimination").
    """

    src: int
    dst: int
    section: Section

    @property
    def elements(self) -> int:
        return self.section.size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"P{self.src + 1} -> P{self.dst + 1}: {self.section}"


@dataclass(frozen=True)
class RedistributionPlan:
    """All moves realising ``source`` → ``target`` ownership."""

    source: Distribution
    target: Distribution
    moves: tuple[Move, ...]

    def moves_from(self, pid: int) -> list[Move]:
        return [m for m in self.moves if m.src == pid]

    def moves_to(self, pid: int) -> list[Move]:
        return [m for m in self.moves if m.dst == pid]

    @property
    def total_elements_moved(self) -> int:
        return sum(m.elements for m in self.moves)

    @property
    def message_count(self) -> int:
        return len(self.moves)

    @property
    def stationary_elements(self) -> int:
        """Elements whose owner does not change (transfers eliminated)."""
        return self.source.index_space.size - self.total_elements_moved

    def pairs(self) -> Iterator[tuple[int, int]]:
        seen: set[tuple[int, int]] = set()
        for m in self.moves:
            key = (m.src, m.dst)
            if key not in seen:
                seen.add(key)
                yield key

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [
            f"redistribute {self.source.spec_str()} -> {self.target.spec_str()}: "
            f"{self.message_count} moves, {self.total_elements_moved} elements"
        ]
        lines.extend(f"  {m}" for m in self.moves)
        return "\n".join(lines)


def plan_redistribution(
    source: Distribution,
    target: Distribution,
    *,
    segmentation: Segmentation | None = None,
) -> RedistributionPlan:
    """Compute the moves realising a change of distribution.

    Without a segmentation the plan is element-exact: one move per
    non-empty ``(source-owned piece ∩ target-owned piece)`` with distinct
    owners.  With a segmentation (which must segment ``source``), each
    source segment is intersected with the target ownership instead, so
    the plan's unit of transfer matches the run-time unit of ownership —
    whole segments move when they land on a single receiver, and edge
    segments straddling receivers are split minimally.
    """
    if source.index_space != target.index_space:
        raise DistributionError(
            f"redistribution endpoints disagree on index space: "
            f"{source.index_space} vs {target.index_space}"
        )
    if source.grid.size != target.grid.size:
        raise DistributionError(
            "redistribution between different processor counts is not supported"
        )
    if segmentation is not None and segmentation.distribution != source:
        raise DistributionError(
            "segmentation passed to plan_redistribution must segment the source"
        )

    moves: list[Move] = []
    target_regions = [
        (pid, sec) for pid in target.grid.pids() for sec in target.owned_sections(pid)
    ]

    if segmentation is None:
        sources: Iterator[tuple[int, Section]] = (
            (pid, sec)
            for pid in source.grid.pids()
            for sec in source.owned_sections(pid)
        )
    else:
        sources = segmentation.all_segments()

    for src_pid, src_sec in sources:
        for dst_pid, dst_sec in target_regions:
            if dst_pid == src_pid:
                continue
            inter = src_sec.intersect(dst_sec)
            if inter is not None:
                moves.append(Move(src_pid, dst_pid, inter))

    return RedistributionPlan(source, target, tuple(moves))
