"""Compiler-chosen segmentation of local partitions (paper section 3, Figure 3).

XDP permits ownership transfer at single-element granularity, but "for
efficiency's sake, a compiler may use a coarser granularity of ownership
transfer" — it logically divides each processor's local partition of an
array into *segments* of a size and shape chosen by the compiler.  A
processor can transfer the ownership of each segment individually, and the
run-time symbol table tracks state per segment.

A :class:`Segmentation` pairs a :class:`~repro.distributions.layout.Distribution`
with a segment shape (member counts per dimension) and enumerates, per
processor, the segments as concrete sections of the *global* index space.
Segments at partition edges may be partial (smaller than the nominal
shape), exactly as a compiler handling non-dividing extents would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..core.errors import DistributionError
from ..core.sections import Section, Triplet, unit_sections_1d
from .layout import Distribution

__all__ = ["Segmentation", "chunk_triplet"]


def chunk_triplet(t: Triplet, members: int) -> list[Triplet]:
    """Cut a progression into consecutive chunks of ``members`` members.

    The chunks preserve the stride of ``t`` — segmenting a ``CYCLIC``-owned
    dimension produces strided segments, matching Figure 2's array ``B``
    whose ``(4, 2)`` segments span cyclically-owned columns.
    """
    if members < 1:
        raise DistributionError(f"segment extent must be >= 1, got {members}")
    out: list[Triplet] = []
    start = t.lo
    while start <= t.hi:
        last = min(t.hi, start + (members - 1) * t.step)
        out.append(Triplet(start, last, t.step))
        start = last + t.step
    return out


@dataclass(frozen=True)
class Segmentation:
    """Per-processor tiling of a distribution's local partitions.

    Parameters
    ----------
    distribution:
        The underlying HPF-style partitioning.
    segment_shape:
        Number of owned members each segment spans per dimension (the
        paper's "segment shape" column in Figure 2 — e.g. ``(2, 1)`` for
        array ``A``).  Must have the same rank as the array.
    """

    distribution: Distribution
    segment_shape: tuple[int, ...]
    _cache: dict[int, tuple[Section, ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.segment_shape, tuple):
            object.__setattr__(self, "segment_shape", tuple(self.segment_shape))
        if len(self.segment_shape) != self.distribution.rank:
            raise DistributionError(
                f"segment shape {self.segment_shape} has rank "
                f"{len(self.segment_shape)}, array has rank {self.distribution.rank}"
            )
        if any(s < 1 for s in self.segment_shape):
            raise DistributionError(f"invalid segment shape {self.segment_shape}")

    # ------------------------------------------------------------------ #

    @property
    def rank(self) -> int:
        return self.distribution.rank

    def segments(self, pid: int) -> tuple[Section, ...]:
        """All segments owned by ``pid`` at program start, as global sections.

        Deterministic order: owned pieces in distribution order, tiled
        row-major (last dimension fastest), matching the storage layout in
        Figure 3's "local segmentation" panels.
        """
        cached = self._cache.get(pid)
        if cached is not None:
            return cached
        out: list[Section] = []
        for owned in self.distribution.owned_sections(pid):
            if self.segment_shape == (1,) and len(owned.dims) == 1:
                # Unit rank-1 segments — one per owned member, exactly what
                # chunk_triplet + rec below would build (single-member
                # chunks canonicalize to step 1), bulk-constructed.
                t = owned.dims[0]
                out.extend(unit_sections_1d(t.lo, t.hi, t.step))
                continue
            per_dim = [
                chunk_triplet(t, m) for t, m in zip(owned.dims, self.segment_shape)
            ]

            def rec(axis: int, dims: tuple[Triplet, ...]) -> None:
                if axis == self.rank:
                    out.append(Section(dims))
                    return
                for c in per_dim[axis]:
                    rec(axis + 1, dims + (c,))

            rec(0, ())
        result = tuple(out)
        self._cache[pid] = result
        return result

    def segment_count(self, pid: int) -> int:
        """The "#segments" column of Figure 2 for this processor."""
        return len(self.segments(pid))

    def all_segments(self) -> Iterator[tuple[int, Section]]:
        """Yield ``(initial_owner_pid, segment)`` over the whole array."""
        for pid in self.distribution.grid.pids():
            for seg in self.segments(pid):
                yield pid, seg

    def segment_containing(self, pid: int, point: tuple[int, ...]) -> Section | None:
        """The segment of ``pid``'s initial partition containing ``point``."""
        for seg in self.segments(pid):
            if point in seg:
                return seg
        return None

    def nominal_segment_size(self) -> int:
        """Elements in a full (non-edge) segment."""
        n = 1
        for m in self.segment_shape:
            n *= m
        return n

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"segmentation {self.segment_shape} of {self.distribution.spec_str()} "
            f"{self.distribution.index_space}"
        )
