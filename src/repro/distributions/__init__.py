"""HPF-style data distributions, processor grids, segmentation and
redistribution planning — the partitioning substrate assumed by the paper's
example implementation (section 3)."""

from .grid import ProcessorGrid
from .layout import (
    Block,
    BlockCyclic,
    Collapsed,
    Cyclic,
    DimSpec,
    Distribution,
    parse_dist_spec,
)
from .redistribute import Move, RedistributionPlan, plan_redistribution
from .segmentation import Segmentation, chunk_triplet

__all__ = [
    "ProcessorGrid",
    "DimSpec",
    "Block",
    "Cyclic",
    "BlockCyclic",
    "Collapsed",
    "Distribution",
    "parse_dist_spec",
    "Segmentation",
    "chunk_triplet",
    "Move",
    "RedistributionPlan",
    "plan_redistribution",
]
