"""Atomic on-disk record writes for benchmark and report artifacts.

Every ``BENCH_*.json`` record (and any other JSON report the CLI or the
benchmark harness persists) goes through :func:`write_json_atomic`: the
document is serialized to a temporary file in the destination directory,
fsynced, and published with ``os.replace``.  A reader therefore observes
either the previous complete record or the new complete record — an
interrupted bench run can never leave a truncated file behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["write_json_atomic"]


def write_json_atomic(path: str | Path, doc: object, *, indent: int = 2) -> Path:
    """Serialize ``doc`` as JSON to ``path`` atomically; return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = json.dumps(doc, indent=indent) + "\n"
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
