"""Per-processor utilization rendering.

The paper's optimizations trade messages for overlap; a quick visual of
where each processor's time went (compute vs. communication overhead vs.
idle) makes the effect legible in examples and experiment logs.
"""

from __future__ import annotations

from ..machine.stats import RunStats

__all__ = ["utilization_bars", "utilization_summary"]


def utilization_bars(stats: RunStats, *, width: int = 50) -> str:
    """ASCII utilization bars: ``#`` compute, ``o`` send/recv overhead,
    ``.`` idle; one row per processor, scaled to the makespan."""
    span = stats.makespan or 1.0
    lines = []
    for p in stats.procs:
        n_c = round(p.compute_time / span * width)
        n_o = round((p.send_overhead + p.recv_overhead) / span * width)
        n_i = round(p.idle_time / span * width)
        used = min(width, n_c + n_o + n_i)
        bar = "#" * n_c + "o" * n_o + "." * n_i + " " * (width - used)
        lines.append(f"P{p.pid + 1} |{bar[:width]}| "
                     f"busy {100 * p.busy_time / span:5.1f}%")
    return "\n".join(lines)


def utilization_summary(stats: RunStats) -> dict[str, float]:
    """Aggregate fractions of total processor-time (compute/overhead/idle)."""
    span = stats.makespan * len(stats.procs) or 1.0
    return {
        "compute": stats.total_compute_time / span,
        "overhead": stats.total_overhead / span,
        "idle": stats.total_idle_time / span,
    }
