"""Chrome trace-event export for engine traces.

:class:`~repro.machine.stats.RunStats` keeps a :class:`TraceEvent` list
when tracing is on; this module renders it in the Chrome trace-event JSON
format (the ``traceEvents`` array of instant events, one row per
processor) so any engine run — including tuner-validated candidates —
can be dropped into Perfetto / ``chrome://tracing`` and inspected on a
timeline.  The export is lossless: :func:`load_chrome_trace` recovers the
exact event list, which the unit tests round-trip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from ..machine.stats import TraceEvent

__all__ = ["chrome_trace", "dump_chrome_trace", "load_chrome_trace"]


def chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Render engine trace events as a Chrome trace-event document.

    Each processor becomes one pid/tid row (1-based, matching the
    ``P1..Pn`` naming everywhere else); each :class:`TraceEvent` becomes a
    thread-scoped instant event with the engine's virtual time as ``ts``
    and the detail string preserved in ``args``.

    Events are emitted in nondecreasing ``ts`` order (the engine stamps
    completion events with their future time, so the raw trace list is
    not sorted); the sort is stable, so simultaneous events keep their
    engine order.
    """
    trace_events: list[dict] = []
    pids_seen: set[int] = set()
    for e in sorted(events, key=lambda ev: ev.time):
        if e.pid not in pids_seen:
            pids_seen.add(e.pid)
            trace_events.append({
                "ph": "M", "name": "process_name", "pid": e.pid + 1, "tid": 0,
                "args": {"name": f"P{e.pid + 1}"},
            })
        trace_events.append({
            "ph": "i", "s": "t",
            "name": e.kind,
            "ts": e.time,
            "pid": e.pid + 1,
            "tid": e.pid + 1,
            "args": {"detail": e.detail},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def dump_chrome_trace(events: Iterable[TraceEvent], path: str | Path) -> Path:
    """Write the Chrome trace JSON for ``events`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events), indent=1) + "\n")
    return path


def load_chrome_trace(source: str | Path | dict) -> list[TraceEvent]:
    """Recover the engine event list from a Chrome trace document.

    Accepts a path, a JSON string, or an already-parsed document; skips
    metadata events.  Together with :func:`chrome_trace` this is a
    lossless round trip.
    """
    if isinstance(source, Path):
        doc = json.loads(source.read_text())
    elif isinstance(source, str):
        if source.lstrip().startswith("{"):
            doc = json.loads(source)
        else:
            doc = json.loads(Path(source).read_text())
    else:
        doc = source
    out: list[TraceEvent] = []
    for e in doc["traceEvents"]:
        if e.get("ph") != "i":
            continue
        out.append(TraceEvent(
            time=float(e["ts"]),
            pid=int(e["pid"]) - 1,
            kind=str(e["name"]),
            detail=str(e.get("args", {}).get("detail", "")),
        ))
    return out
