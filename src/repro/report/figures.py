"""Regeneration of the paper's figures as text artifacts.

* **Figure 1** — the rules governing execution.  :func:`figure1_check`
  *executes* every rule against the engine/run-time and reports a PASS row
  per rule, making the semantics table an executable artifact.
* **Figure 2** — the XDP symbol-table structure for the paper's arrays
  ``A[1:4,1:8] (*, BLOCK) seg (2,1)`` and ``B[1:16,1:16] (BLOCK, CYCLIC)
  seg (4,2)`` on a 2x2 grid, rendered per processor including the
  run-time-filled segment descriptors.
* **Figure 3** — ownership and segmentation maps of a 4x8 array under the
  figure's two distributions and two segmentations each, highlighting P3.
* **Figure 4** — the 3-D FFT example's data-to-segment assignment before
  and after the (*,*,BLOCK) → (*,BLOCK,*) repartitioning.
"""

from __future__ import annotations

import numpy as np

from ..core.sections import Section, section
from ..core.states import SegmentState
from ..distributions import (
    Block,
    Collapsed,
    Cyclic,
    Distribution,
    ProcessorGrid,
    Segmentation,
    parse_dist_spec,
)
from ..machine.effects import Compute, RecvInit, Send, WaitAccessible
from ..machine.engine import Engine
from ..machine.message import TransferKind
from ..machine.model import MachineModel
from ..runtime.symtab import MAXINT, MININT, RuntimeSymbolTable

__all__ = [
    "figure1_check",
    "figure2_table",
    "figure3_maps",
    "figure4_layouts",
    "ownership_map",
    "segment_map",
    "render_symbol_table",
]


# ---------------------------------------------------------------------- #
# shared renderers
# ---------------------------------------------------------------------- #


def ownership_map(dist: Distribution) -> str:
    """ASCII map of a rank-2 index space: each cell labels its owner."""
    if dist.rank != 2:
        raise ValueError("ownership_map renders rank-2 arrays")
    (r_lo, r_hi), (c_lo, c_hi) = (
        (t.lo, t.hi) for t in dist.index_space.dims
    )
    lines = []
    for r in range(r_lo, r_hi + 1):
        cells = [dist.grid.label(dist.owner((r, c))) for c in range(c_lo, c_hi + 1)]
        lines.append(" ".join(f"{c:>3s}" for c in cells))
    return "\n".join(lines)


def segment_map(seg: Segmentation, pid: int) -> str:
    """ASCII map of a rank-2 array: pid's segments numbered, others '.'."""
    dist = seg.distribution
    if dist.rank != 2:
        raise ValueError("segment_map renders rank-2 arrays")
    (r_lo, r_hi), (c_lo, c_hi) = ((t.lo, t.hi) for t in dist.index_space.dims)
    owner_of_point: dict[tuple[int, int], int] = {}
    for idx, s in enumerate(seg.segments(pid), start=1):
        for pt in s:
            owner_of_point[pt] = idx
    lines = []
    for r in range(r_lo, r_hi + 1):
        cells = []
        for c in range(c_lo, c_hi + 1):
            idx = owner_of_point.get((r, c))
            cells.append(f"s{idx}" if idx is not None else " .")
        lines.append(" ".join(f"{c:>3s}" for c in cells))
    return "\n".join(lines)


def render_symbol_table(st: RuntimeSymbolTable, *, descriptors: bool = True) -> str:
    """One processor's run-time XDP symbol table, Figure-2 style."""
    header = (
        f"{'idx':>3} {'symbol':<8} {'rank':>4} {'global shape':<14} "
        f"{'partitioning':<18} {'seg shape':<10} {'#segs':>5}"
    )
    lines = [f"run-time XDP symbol table of {'P' + str(st.pid + 1)}", header,
             "-" * len(header)]
    for e in st.variables():
        lines.append(
            f"{e.index:>3} {e.name:<8} {e.rank:>4} {str(e.global_shape):<14} "
            f"{e.partitioning:<18} {str(e.segment_shape):<10} {e.segment_count:>5}"
        )
        if descriptors:
            for d in e.segdescs:
                lines.append(
                    f"      segdesc: bounds={str(d.segment):<18} "
                    f"status={d.state.value}"
                )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Figure 1: executable rules check
# ---------------------------------------------------------------------- #


def _check(rule: str, desc: str, fn) -> tuple[str, str, bool]:
    try:
        ok = bool(fn())
    except Exception:
        ok = False
    return rule, desc, ok


def figure1_check() -> list[tuple[str, str, bool]]:
    """Execute every Figure-1 rule; returns (rule, description, ok) rows."""
    model = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)

    def fresh(n=2, extent=4, seg=1):
        eng = Engine(n, model)
        dist = Distribution(section((1, extent)), (Block(),), ProcessorGrid((n,)))
        eng.declare("X", Segmentation(dist, (seg,)))
        return eng

    rows: list[tuple[str, str, bool]] = []

    def mypid_rule():
        eng = Engine(3, model)
        seen = []

        def prog(ctx):
            seen.append(ctx.pid)
            yield Compute(1.0)

        eng.run(prog)
        return sorted(seen) == [0, 1, 2]

    rows.append(_check("mypid", "unique identifier per processor", mypid_rule))

    def mylb_rule():
        st = RuntimeSymbolTable(0)
        dist = Distribution(section((1, 8)), (Block(),), ProcessorGrid((2,)))
        st.declare("X", Segmentation(dist, (1,)))
        return (
            st.mylb("X", 1) == 1
            and st.myub("X", 1) == 4
            and st.mylb("X", 1, section((5, 8))) == MAXINT
            and st.myub("X", 1, section((5, 8))) == MININT
        )

    rows.append(_check("mylb/myub", "owned bounds, MAXINT/MININT when unowned", mylb_rule))

    def iown_rule():
        st = RuntimeSymbolTable(0)
        dist = Distribution(section((1, 8)), (Block(),), ProcessorGrid((2,)))
        st.declare("X", Segmentation(dist, (1,)))
        return st.iown("X", section((1, 4))) and not st.iown("X", section((4, 5)))

    rows.append(_check("iown(X)", "true iff X owned by p", iown_rule))

    def accessible_rule():
        st = RuntimeSymbolTable(0)
        dist = Distribution(section((1, 8)), (Block(),), ProcessorGrid((2,)))
        st.declare("X", Segmentation(dist, (1,)))
        if not st.accessible("X", section(1)):
            return False
        st.begin_value_receive("X", section(1))
        return not st.accessible("X", section(1)) and st.iown("X", section(1))

    rows.append(
        _check("accessible(X)", "owned and no uncompleted receive", accessible_rule)
    )

    def await_rule():
        eng = fresh()
        out = {}

        def prog(ctx):
            if ctx.pid == 0:
                yield Compute(100.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
            else:
                out["unowned"] = not ctx.symtab.iown("X", section(1))
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(3),
                )
                yield WaitAccessible("X", section(3))
                out["after"] = ctx.symtab.accessible("X", section(3))

        eng.run(prog)
        return out.get("unowned") and out.get("after")

    rows.append(
        _check("await(X)", "false if unowned, else blocks until accessible", await_rule)
    )

    def send_value_rule():
        eng = fresh()

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 42.0)
                yield Send(TransferKind.VALUE, "X", section(1))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(3),
                )
                yield WaitAccessible("X", section(3))

        eng.run(prog)
        return eng.symtabs[1].read("X", section(3))[0] == 42.0

    rows.append(
        _check("E ->", "send name and value to unspecified recipient", send_value_rule)
    )

    def send_set_rule():
        eng = fresh(3, extent=3)

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1, 2))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(ctx.pid + 1),
                )
                yield WaitAccessible("X", section(ctx.pid + 1))

        stats = eng.run(prog)
        return stats.total_messages == 2 and stats.unclaimed_messages == 0

    rows.append(_check("E -> S", "send to specified processor set", send_set_rule))

    def owner_send_rule():
        eng = fresh()

        def prog(ctx):
            if ctx.pid == 0:
                yield WaitAccessible("X", section(1))
                yield Send(TransferKind.OWNERSHIP, "X", section(1))
            else:
                yield RecvInit(TransferKind.OWNERSHIP, "X", section(1))
                yield WaitAccessible("X", section(1))

        stats = eng.run(prog)
        return (
            not eng.symtabs[0].iown("X", section(1))
            and eng.symtabs[1].iown("X", section(1))
            and stats.total_bytes == 16  # header only: no value moved
        )

    rows.append(_check("E =>", "ownership moves without the value", owner_send_rule))

    def owner_value_send_rule():
        eng = fresh()

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 7.0)
                yield WaitAccessible("X", section(1))
                yield Send(TransferKind.OWN_VALUE, "X", section(1))
            else:
                yield RecvInit(TransferKind.OWN_VALUE, "X", section(1))
                yield WaitAccessible("X", section(1))

        eng.run(prog)
        return (
            eng.symtabs[1].iown("X", section(1))
            and eng.symtabs[1].read("X", section(1))[0] == 7.0
        )

    rows.append(_check("E -=>", "ownership and value move together", owner_value_send_rule))

    def recv_transitional_rule():
        eng = fresh()
        states = {}

        def prog(ctx):
            if ctx.pid == 0:
                yield Compute(100.0)
                yield WaitAccessible("X", section(1))
                yield Send(TransferKind.OWN_VALUE, "X", section(1))
            else:
                yield RecvInit(TransferKind.OWN_VALUE, "X", section(1))
                states["mid"] = ctx.symtab.state_of("X", section(1))
                yield WaitAccessible("X", section(1))
                states["end"] = ctx.symtab.state_of("X", section(1))

        eng.run(prog)
        return (
            states.get("mid") is SegmentState.TRANSITIONAL
            and states.get("end") is SegmentState.ACCESSIBLE
        )

    rows.append(
        _check(
            "states",
            "receive initiation → transitional; completion → accessible",
            recv_transitional_rule,
        )
    )

    def unowned_rule():
        st = RuntimeSymbolTable(0)
        dist = Distribution(section((1, 8)), (Block(),), ProcessorGrid((2,)))
        st.declare("X", Segmentation(dist, (1,)))
        return st.state_of("X", section((3, 5))) is SegmentState.UNOWNED

    rows.append(
        _check("unowned", "some element not owned ⇒ section unowned", unowned_rule)
    )

    return rows


def figure1_text() -> str:
    rows = figure1_check()
    width = max(len(r) for r, _, _ in rows)
    lines = ["Figure 1 — rules governing execution (executable check):"]
    for rule, desc, ok in rows:
        mark = "PASS" if ok else "FAIL"
        lines.append(f"  [{mark}] {rule:<{width}}  {desc}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Figure 2
# ---------------------------------------------------------------------- #


def figure2_table(pid: int = 0) -> str:
    """The paper's Figure 2 symbol table, filled in at 'run time' for one
    processor of the 2x2 grid."""
    grid = ProcessorGrid((2, 2))
    st = RuntimeSymbolTable(pid)
    a = Segmentation(
        Distribution(section((1, 4), (1, 8)), (Collapsed(), Block()), grid),
        (2, 1),
    )
    b = Segmentation(
        Distribution(section((1, 16), (1, 16)), (Block(), Cyclic()), grid),
        (4, 2),
    )
    st.declare("A", a)
    st.declare("B", b)
    return render_symbol_table(st)


# ---------------------------------------------------------------------- #
# Figure 3
# ---------------------------------------------------------------------- #


def figure3_maps(pid: int = 2) -> str:
    """The four panels of Figure 3 for a 4x8 array on a 2x2 grid, shown
    (like the paper) for processor P3 (pid 2 under column-major order)."""
    grid = ProcessorGrid((2, 2))
    space = section((1, 4), (1, 8))
    panels = [
        ("(BLOCK, BLOCK), segments (2,1)", (Block(), Block()), (2, 1)),
        ("(BLOCK, BLOCK), segments (1,4)", (Block(), Block()), (1, 4)),
        ("(*, BLOCK), segments (2,1)", (Collapsed(), Block()), (2, 1)),
        ("(*, BLOCK), segments (4,1)", (Collapsed(), Block()), (4, 1)),
    ]
    blocks = [f"Figure 3 — 4x8 array on a 2x2 grid, segments of {grid.label(pid)}:"]
    for title, specs, seg_shape in panels:
        dist = Distribution(space, specs, grid)
        seg = Segmentation(dist, seg_shape)
        blocks.append(f"\n{title}\nownership:\n{ownership_map(dist)}")
        blocks.append(f"{grid.label(pid)} segments:\n{segment_map(seg, pid)}")
    return "\n".join(blocks)


# ---------------------------------------------------------------------- #
# Figure 4
# ---------------------------------------------------------------------- #


def figure4_layouts(n: int = 4, nprocs: int = 4) -> str:
    """The FFT example's distributions before/after repartitioning, with
    each processor's segment list (Figure 4's left column)."""
    grid = ProcessorGrid((nprocs,))
    space = section((1, n), (1, n), (1, n))
    before = Segmentation(
        Distribution(space, (Collapsed(), Collapsed(), Block()), grid),
        (n, 1, 1),
    )
    after = Segmentation(
        Distribution(space, (Collapsed(), Block(), Collapsed()), grid),
        (n, 1, 1),
    )
    out = [f"Figure 4 — 3-D FFT A[1:{n},1:{n},1:{n}] on {nprocs} processors"]
    for title, seg in (("before: (*, *, BLOCK)", before),
                       ("after:  (*, BLOCK, *)", after)):
        out.append(f"\n{title}")
        for pid in grid.pids():
            segs = ", ".join(str(s) for s in seg.segments(pid))
            out.append(f"  {grid.label(pid)}: {segs}")
    return "\n".join(out)
