"""Text regeneration of the paper's figures and experiment tables."""

from .figures import (
    figure1_check,
    figure1_text,
    figure2_table,
    figure3_maps,
    figure4_layouts,
    ownership_map,
    render_symbol_table,
    segment_map,
)
from .tracefmt import chrome_trace, dump_chrome_trace, load_chrome_trace
from .utilization import utilization_bars, utilization_summary

__all__ = [
    "chrome_trace",
    "dump_chrome_trace",
    "load_chrome_trace",
    "figure1_check",
    "figure1_text",
    "figure2_table",
    "figure3_maps",
    "figure4_layouts",
    "ownership_map",
    "segment_map",
    "render_symbol_table",
    "utilization_bars",
    "utilization_summary",
]
