"""repro — a reproduction of "Explicit Data Placement (XDP): A Methodology
for Explicit Compile-Time Representation and Optimization of Data Movement"
(Bala, Ferrante, Carter — PPoPP 1993).

The package provides, from the bottom up:

* :mod:`repro.distributions` — HPF-style partitioning, processor grids,
  segmentation, redistribution planning;
* :mod:`repro.machine` — a deterministic discrete-event SPMD machine with
  a latency/bandwidth/overhead cost model;
* :mod:`repro.runtime` — the per-processor run-time XDP symbol table of
  paper section 3;
* :mod:`repro.core` — the IL+XDP intermediate representation (parser,
  printer, verifier), the reference interpreter, the owner-computes /
  ownership-migration translator, the optimization passes, and the VM
  code generator with delayed communication binding;
* :mod:`repro.apps` — the paper's 3-D FFT, a Jacobi solver, dynamic load
  balancing, and ownership-based monitoring;
* :mod:`repro.report` — regeneration of the paper's figures.

Quickstart::

    from repro import parse_program, translate, optimize, Interpreter

    seq = '''
    array A[1:8] dist (BLOCK) seg (1)
    array B[1:8] dist (CYCLIC) seg (1)

    do i = 1, 8
      A[i] = A[i] + B[i]
    enddo
    '''
    naive = translate(parse_program(seq), nprocs=4)
    best = optimize(naive, nprocs=4).program
    it = Interpreter(best, 4)
    stats = it.run()
"""

from .core import (
    CompilationError,
    DeadlockError,
    DistributionError,
    OwnershipError,
    ParseError,
    ProtocolError,
    Section,
    SegmentState,
    Triplet,
    UnknownVariableError,
    VerificationError,
    XDPError,
    section,
    triplet,
)
from .core.codegen import CompiledProgram, lower
from .core.interp import Interpreter, run_program
from .core.ir.parser import parse_expression, parse_program, parse_statements
from .core.ir.printer import print_program
from .core.ir.verify import verify_program
from .core.kernels import Kernel, KernelRegistry, default_registry
from .core.opt import PassManager, optimize
from .core.translate import translate
from .distributions import (
    Block,
    BlockCyclic,
    Collapsed,
    Cyclic,
    Distribution,
    ProcessorGrid,
    Segmentation,
    plan_redistribution,
)
from .machine import Engine, MachineModel, RunStats
from .runtime import MAXINT, MININT, RuntimeSymbolTable

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # errors
    "XDPError", "ParseError", "VerificationError", "OwnershipError",
    "UnknownVariableError", "ProtocolError", "DeadlockError",
    "DistributionError", "CompilationError",
    # sections & states
    "Triplet", "Section", "triplet", "section", "SegmentState",
    # distributions
    "ProcessorGrid", "Block", "Cyclic", "BlockCyclic", "Collapsed",
    "Distribution", "Segmentation", "plan_redistribution",
    # machine & runtime
    "Engine", "MachineModel", "RunStats", "RuntimeSymbolTable",
    "MAXINT", "MININT",
    # language & compiler
    "parse_program", "parse_statements", "parse_expression",
    "print_program", "verify_program", "translate", "optimize",
    "PassManager", "Interpreter", "run_program", "lower",
    "CompiledProgram", "Kernel", "KernelRegistry", "default_registry",
]
