"""Transport contract tests (both backends, with and without middleware).

Every transport backend must honor the engine's rendezvous semantics —
FIFO-by-initiation matching per (kind, name) tag, serialized multicast
injection, crash draining — whatever primitives it binds the transfers
to, and whatever fault/reliable middleware is stacked on top.  This is
the paper's section-5 result-transparency claim made executable: the
message-passing and shared-address bindings of the *same* program must
produce bit-identical result arrays (timing may differ; answers may
not).

Also covers the engine-reuse guarantee per backend: a second ``run()``
on the same instance — including after a :class:`DegradedRunError` —
starts from fresh transport state (no stale pool contents, no pending
fences, rng rewound to the seed).
"""

import random

import numpy as np
import pytest

from repro.core.errors import DegradedRunError
from repro.core.ir.parser import parse_program
from repro.core.codegen import lower
from repro.core.sections import section
from repro.distributions import Block, Distribution, ProcessorGrid, Segmentation
from repro.machine import (
    Compute,
    Engine,
    MachineModel,
    RecvInit,
    Send,
    TransferKind,
    WaitAccessible,
)
from repro.machine.faults import Crash, FaultModel
from repro.machine.reliable import ReliableTransport
from repro.machine.transport import (
    BACKENDS,
    MessagePassingTransport,
    ProcTransport,
    SharedAddressTransport,
    make_transport,
)
from repro.machine.transport.middleware import FaultInjection, ReliableDelivery

MODEL = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)

#: Middleware stacks every contract test runs under.  ``lossless`` fault
#: injection and the reliable layer must both be behavior-transparent.
STACKS = {
    "bare": lambda: {},
    "faults-inert": lambda: {"faults": FaultModel.none()},
    "reliable": lambda: {
        "reliable": ReliableTransport(rto=200.0, backoff=2.0, max_retries=8)
    },
}


def linear_seg(extent: int, nprocs: int) -> Segmentation:
    dist = Distribution(
        section((1, extent)), (Block(),), ProcessorGrid((nprocs,))
    )
    return Segmentation(dist, (1,))


def make_engine(backend, stack="bare", nprocs=2, extent=None, **kw):
    eng = Engine(nprocs, MODEL, backend=backend, **STACKS[stack](), **kw)
    eng.declare("X", linear_seg(extent or 3 * nprocs, nprocs))
    return eng


def base_transport(eng):
    """The innermost (backend) transport under any middleware."""
    t = eng.transport
    while hasattr(t, "inner"):
        t = t.inner
    return t


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("stack", sorted(STACKS))
class TestContract:
    def test_fifo_ordering(self, backend, stack):
        """Three same-tag sends land in initiation order, not timing order."""
        eng = make_engine(backend, stack)

        def prog(ctx):
            if ctx.pid == 0:
                for v in (7.0, 8.0, 9.0):
                    ctx.symtab.write("X", section(1), v)
                    yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
            else:
                for slot in (4, 5, 6):
                    yield RecvInit(
                        TransferKind.VALUE, "X", section(1),
                        into_var="X", into_sec=section(slot),
                    )
                for slot in (4, 5, 6):
                    yield WaitAccessible("X", section(slot))

        eng.run(prog)
        got = [eng.symtabs[1].read("X", section(s))[0] for s in (4, 5, 6)]
        assert got == [7.0, 8.0, 9.0]

    def test_multicast_reaches_every_destination(self, backend, stack):
        eng = make_engine(backend, stack, nprocs=3)

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 5.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1, 2))
            else:
                slot = 3 * ctx.pid + 1
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(slot),
                )
                yield WaitAccessible("X", section(slot))

        stats = eng.run(prog)
        assert eng.symtabs[1].read("X", section(4))[0] == 5.0
        assert eng.symtabs[2].read("X", section(7))[0] == 5.0
        assert stats.total_messages == 2

    def test_unspecified_recipient_pool(self, backend, stack):
        """The section-2.7 anyone-may-claim pool works on every binding."""
        eng = make_engine(backend, stack, nprocs=3)

        def prog(ctx):
            if ctx.pid == 0:
                for v in (1.0, 2.0):
                    ctx.symtab.write("X", section(1), v)
                    yield Send(TransferKind.VALUE, "X", section(1))
            else:
                slot = 3 * ctx.pid + 1
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(slot),
                )
                yield WaitAccessible("X", section(slot))

        stats = eng.run(prog)
        claimed = {
            eng.symtabs[p].read("X", section(3 * p + 1))[0] for p in (1, 2)
        }
        assert claimed == {1.0, 2.0}
        assert stats.unclaimed_messages == 0

    def test_crash_during_flight_degrades(self, backend, stack):
        """A receiver crashing with a message in flight must degrade the
        run, not hang it — on every backend and under every stack."""
        kw = STACKS[stack]()
        crash = FaultModel(crashes=(Crash(pid=1, at=5.0),))
        if "faults" in kw or not kw:
            kw["faults"] = crash
        else:  # reliable stack: crashes ride the fault model alongside it
            kw["faults"] = crash
        eng = Engine(2, MODEL, backend=backend, **kw)
        eng.declare("X", linear_seg(6, 2))

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 1.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
                yield Compute(100.0)
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(4),
                )
                yield Compute(50.0)
                yield WaitAccessible("X", section(4))

        with pytest.raises(DegradedRunError) as ei:
            eng.run(prog)
        assert ei.value.crashed == (1,)
        assert 0 in ei.value.checkpoint


class TestMiddlewareWiring:
    """The injection seam: middleware must sit between the scheduler's
    send path and the backend's route, whatever the backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fault_layer_wraps_backend(self, backend):
        eng = Engine(2, MODEL, backend=backend, faults=FaultModel.lossy(drop=0.5))
        assert isinstance(eng.transport, FaultInjection)
        inner = eng.transport.inner
        expected = {
            "msg": MessagePassingTransport,
            "shmem": SharedAddressTransport,
            "proc": ProcTransport,
        }[backend]
        assert type(inner) is expected
        # The base transport injects through the outermost middleware.
        assert inner.injector is eng.transport
        assert eng.backend == backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reliable_layer_wraps_backend(self, backend):
        eng = Engine(2, MODEL, backend=backend,
                     reliable=ReliableTransport(rto=100.0))
        assert isinstance(eng.transport, ReliableDelivery)
        assert eng.transport.base.injector is eng.transport
        assert eng.backend == backend

    def test_explicit_transport_conflicts_with_backend(self):
        with pytest.raises(ValueError):
            Engine(2, MODEL, transport=make_transport("msg"), backend="shmem")


class TestEngineReusePerBackend:
    """S2: the same Engine instance is reusable on every backend, and a
    reset leaves no transport-private state behind."""

    def prog(self, ctx):
        if ctx.pid == 0:
            ctx.symtab.write("X", section(1), 3.0)
            yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
            # One extra unclaimed message left in the pool on purpose.
            ctx.symtab.write("X", section(1), 4.0)
            yield Send(TransferKind.VALUE, "X", section(1))
        else:
            yield RecvInit(
                TransferKind.VALUE, "X", section(1),
                into_var="X", into_sec=section(4),
            )
            yield WaitAccessible("X", section(4))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_second_run_bit_identical(self, backend):
        eng = make_engine(backend, extent=6)
        s1 = eng.run(self.prog)
        s2 = eng.run(self.prog)
        assert s1.makespan == s2.makespan
        assert s1.unclaimed_messages == s2.unclaimed_messages == 1
        assert [p.finish_time for p in s1.procs] == \
               [p.finish_time for p in s2.procs]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reset_clears_transport_private_state(self, backend):
        eng = make_engine(backend, extent=6)
        eng.run(self.prog)
        base = base_transport(eng)
        assert sum(len(p) for p in base._unclaimed.values()) == 1
        eng._reset_run_state()
        # Pool contents and pending fences/receives are gone...
        assert sum(len(p) for p in base._unclaimed.values()) == 0
        assert all(q.live == 0 for q in base._pending.values())
        # ...and the rng is rewound to the seed.
        assert eng._rng.getstate() == random.Random(eng.seed).getstate()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reuse_after_degraded_run(self, backend):
        eng = Engine(
            2, MODEL, backend=backend, seed=11,
            faults=FaultModel(
                default=FaultModel.lossy(drop=0.2).default,
                crashes=(Crash(pid=1, at=5.0),),
            ),
        )
        eng.declare("X", linear_seg(6, 2))
        with pytest.raises(DegradedRunError) as e1:
            eng.run(self.prog)
        # The replay must be bit-identical: same crash, same partial
        # stats — proving the reset rewound the rng and drained the
        # transport rather than replaying against leftover state.
        with pytest.raises(DegradedRunError) as e2:
            eng.run(self.prog)
        assert e1.value.crashed == e2.value.crashed == (1,)
        assert e1.value.stats.makespan == e2.value.stats.makespan
        base = base_transport(eng)
        eng._reset_run_state()
        assert sum(len(p) for p in base._unclaimed.values()) == 0
        assert eng._rng.getstate() == random.Random(11).getstate()


class TestResultTransparency:
    """Section 5: delayed binding to either primitive set must produce
    bit-identical result arrays on the shipped applications."""

    def test_jacobi(self):
        from repro.apps.jacobi import run_jacobi

        runs = {
            b: run_jacobi(16, 4, 3, "halo-overlap", backend=b)
            for b in BACKENDS
        }
        assert all(r.correct for r in runs.values())
        assert runs["msg"].result.tobytes() == runs["shmem"].result.tobytes()
        assert runs["msg"].result.tobytes() == runs["proc"].result.tobytes()

    def test_fft3d(self):
        from repro.apps.fft3d import run_fft3d

        runs = {b: run_fft3d(4, 4, 2, backend=b) for b in BACKENDS}
        assert all(r.correct for r in runs.values())
        assert runs["msg"].result.tobytes() == runs["shmem"].result.tobytes()
        assert runs["msg"].result.tobytes() == runs["proc"].result.tobytes()

    def test_workqueue_static_il(self):
        from repro.apps.workqueue import workqueue_source

        program = parse_program(workqueue_source(12, 4))
        accs = {}
        for b in BACKENDS:
            runner = lower(program, 4, model=MODEL, backend=b)
            runner.run()
            accs[b] = runner.read_global("ACC")
        assert accs["msg"].tobytes() == accs["shmem"].tobytes()
        assert accs["msg"].tobytes() == accs["proc"].tobytes()
        assert accs["msg"].sum() == sum(range(1, 13))

    def test_matmul(self):
        from repro.apps.matmul import run_matmul

        runs = {b: run_matmul(8, 4, "summa", backend=b) for b in BACKENDS}
        assert all(r.correct for r in runs.values())
        assert runs["msg"].result.tobytes() == runs["proc"].result.tobytes()

    def test_timing_differs_semantics_do_not(self):
        """The backends really are different machines: same answers,
        different makespans (otherwise the split proved nothing)."""
        from repro.apps.jacobi import run_jacobi

        runs = {
            b: run_jacobi(16, 4, 3, "halo", backend=b) for b in BACKENDS
        }
        assert runs["msg"].stats.makespan != runs["shmem"].stats.makespan
        assert runs["msg"].result.tobytes() == runs["shmem"].result.tobytes()


ENGINE_MODES_UNDER_TEST = ("scalar", "batched")


class TestEngineModeEquivalence:
    """The batched columnar core is an optimization, not a semantic fork.

    For every backend, the scalar loop (the semantic oracle) and the
    batched core must produce bit-identical result arrays, identical
    virtual timings/counts, and byte-identical deadlock diagnoses.  The
    engine mode is selected through ``REPRO_ENGINE_MODE`` exactly as the
    CI matrix does.
    """

    def _per_mode(self, monkeypatch, fn):
        out = {}
        for mode in ENGINE_MODES_UNDER_TEST:
            monkeypatch.setenv("REPRO_ENGINE_MODE", mode)
            out[mode] = fn()
        return out

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_jacobi_bit_identical(self, backend, monkeypatch):
        from repro.apps.jacobi import run_jacobi

        runs = self._per_mode(
            monkeypatch,
            lambda: run_jacobi(16, 4, 3, "halo-overlap", backend=backend),
        )
        assert all(r.correct for r in runs.values())
        assert runs["scalar"].result.tobytes() == \
               runs["batched"].result.tobytes()
        assert runs["scalar"].stats.makespan == runs["batched"].stats.makespan

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fft3d_bit_identical(self, backend, monkeypatch):
        from repro.apps.fft3d import run_fft3d

        runs = self._per_mode(
            monkeypatch, lambda: run_fft3d(4, 4, 2, backend=backend)
        )
        assert all(r.correct for r in runs.values())
        assert runs["scalar"].result.tobytes() == \
               runs["batched"].result.tobytes()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_workqueue_counts_identical(self, backend, monkeypatch):
        from repro.apps.workqueue import make_job_costs, run_workqueue

        costs = make_job_costs(48, skew=4.0, seed=7)
        runs = self._per_mode(
            monkeypatch,
            lambda: run_workqueue(
                48, 4, scheme="dynamic", costs=costs, model=MODEL,
                backend=backend,
            ),
        )
        sc, ba = runs["scalar"], runs["batched"]
        assert sc.makespan == ba.makespan
        assert sc.stats.total_messages == ba.stats.total_messages
        assert sc.stats.effects_processed == ba.stats.effects_processed
        assert sc.jobs_per_worker == ba.jobs_per_worker

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_deadlock_report_identical(self, backend, monkeypatch):
        """Both modes must diagnose the same deadlock with the same text
        (the report is pinned as a deterministic function of the state)."""
        from repro.core.errors import DeadlockError

        def deadlocked():
            eng = make_engine(backend, nprocs=2)

            def prog(ctx):
                # Both processors wait for a message nobody sends.
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(3 * ctx.pid + 2),
                )
                yield WaitAccessible("X", section(3 * ctx.pid + 2))

            with pytest.raises(DeadlockError) as ei:
                eng.run(prog)
            return str(ei.value)

        reports = self._per_mode(monkeypatch, deadlocked)
        assert reports["scalar"] == reports["batched"]
        assert "pending" in reports["scalar"]
