"""Unit tests for segmentation (paper section 3, Figures 2 and 3)."""

import pytest

from repro.core.errors import DistributionError
from repro.core.sections import Triplet, disjoint_cover_equal, section
from repro.distributions import (
    Block,
    Collapsed,
    Cyclic,
    Distribution,
    ProcessorGrid,
    Segmentation,
    chunk_triplet,
)


class TestChunkTriplet:
    def test_even_unit(self):
        chunks = chunk_triplet(Triplet(1, 8), 2)
        assert [(c.lo, c.hi) for c in chunks] == [(1, 2), (3, 4), (5, 6), (7, 8)]

    def test_ragged_tail(self):
        chunks = chunk_triplet(Triplet(1, 7), 3)
        assert [(c.lo, c.hi) for c in chunks] == [(1, 3), (4, 6), (7, 7)]

    def test_strided(self):
        chunks = chunk_triplet(Triplet(1, 15, 2), 2)
        assert [list(c) for c in chunks] == [[1, 3], [5, 7], [9, 11], [13, 15]]
        assert all(c.step == 2 for c in chunks if c.size > 1)

    def test_chunk_larger_than_extent(self):
        chunks = chunk_triplet(Triplet(1, 3), 10)
        assert len(chunks) == 1 and chunks[0] == Triplet(1, 3)

    def test_invalid(self):
        with pytest.raises(DistributionError):
            chunk_triplet(Triplet(1, 4), 0)


@pytest.fixture
def fig2_A():
    """A[1:4,1:8] (*, BLOCK) over 2x2, segment shape (2,1) -> 4 segments."""
    dist = Distribution(
        section((1, 4), (1, 8)), (Collapsed(), Block()), ProcessorGrid((2, 2))
    )
    return Segmentation(dist, (2, 1))


@pytest.fixture
def fig2_B():
    """B[1:16,1:16] (BLOCK, CYCLIC) over 2x2, segment shape (4,2) -> 8 segments."""
    dist = Distribution(
        section((1, 16), (1, 16)), (Block(), Cyclic()), ProcessorGrid((2, 2))
    )
    return Segmentation(dist, (4, 2))


class TestFigure2:
    def test_A_segment_count(self, fig2_A):
        # Figure 2: #segments = 4 for every processor.
        for pid in range(4):
            assert fig2_A.segment_count(pid) == 4

    def test_A_segment_shape(self, fig2_A):
        for pid in range(4):
            for seg in fig2_A.segments(pid):
                assert seg.shape == (2, 1)

    def test_B_segment_count(self, fig2_B):
        # Figure 2: 8 segments of shape (4,2) per processor.
        for pid in range(4):
            assert fig2_B.segment_count(pid) == 8

    def test_B_segments_strided_columns(self, fig2_B):
        for seg in fig2_B.segments(0):
            assert seg.shape == (4, 2)
            assert seg.dims[1].step == 2  # spans cyclically-owned columns

    def test_segments_partition_local_region(self, fig2_B):
        for pid in range(4):
            (owned,) = fig2_B.distribution.owned_sections(pid)
            assert disjoint_cover_equal(owned, fig2_B.segments(pid))

    def test_nominal_sizes(self, fig2_A, fig2_B):
        assert fig2_A.nominal_segment_size() == 2
        assert fig2_B.nominal_segment_size() == 8


class TestFigure3:
    """4x8 array on a 2x2 grid: the four panels of Figure 3."""

    def test_block_block_2x1(self):
        dist = Distribution(
            section((1, 4), (1, 8)), (Block(), Block()), ProcessorGrid((2, 2))
        )
        seg = Segmentation(dist, (2, 1))
        # P3 (pid 2) owns rows 1:2, cols 5:8 -> four 2x1 segments.
        segs = seg.segments(2)
        assert [str(s) for s in segs] == [
            "[1:2,5]", "[1:2,6]", "[1:2,7]", "[1:2,8]",
        ]

    def test_block_block_1x4(self):
        dist = Distribution(
            section((1, 4), (1, 8)), (Block(), Block()), ProcessorGrid((2, 2))
        )
        seg = Segmentation(dist, (1, 4))
        segs = seg.segments(2)
        assert [str(s) for s in segs] == ["[1,5:8]", "[2,5:8]"]

    def test_star_block_2x1(self):
        dist = Distribution(
            section((1, 4), (1, 8)), (Collapsed(), Block()), ProcessorGrid((2, 2))
        )
        seg = Segmentation(dist, (2, 1))
        # pid 2 ("P3") owns all rows of columns 5:6.
        segs = seg.segments(2)
        assert [str(s) for s in segs] == [
            "[1:2,5]", "[1:2,6]", "[3:4,5]", "[3:4,6]",
        ]

    def test_star_block_4x1(self):
        dist = Distribution(
            section((1, 4), (1, 8)), (Collapsed(), Block()), ProcessorGrid((2, 2))
        )
        seg = Segmentation(dist, (4, 1))
        segs = seg.segments(2)
        assert [str(s) for s in segs] == ["[1:4,5]", "[1:4,6]"]


class TestSegmentationMisc:
    def test_rank_mismatch(self, fig2_A):
        with pytest.raises(DistributionError):
            Segmentation(fig2_A.distribution, (2,))

    def test_bad_shape(self, fig2_A):
        with pytest.raises(DistributionError):
            Segmentation(fig2_A.distribution, (0, 1))

    def test_segment_containing(self, fig2_A):
        seg = fig2_A.segment_containing(0, (2, 1))
        assert seg is not None and (2, 1) in seg
        assert fig2_A.segment_containing(0, (1, 5)) is None  # P3's element

    def test_all_segments_cover_array(self, fig2_B):
        total = sum(seg.size for _, seg in fig2_B.all_segments())
        assert total == 256

    def test_fft_segments(self):
        # Section 4: A[1:4,1:4,1:4], (*,*,BLOCK) on 4 procs, segments of 4
        # consecutive elements -> shape (4,1,1) gives the paper's columns.
        dist = Distribution(
            section((1, 4), (1, 4), (1, 4)),
            (Collapsed(), Collapsed(), Block()),
            ProcessorGrid((4,)),
        )
        seg = Segmentation(dist, (4, 1, 1))
        segs = seg.segments(1)
        assert len(segs) == 4
        assert all(s.shape == (4, 1, 1) for s in segs)
        assert str(segs[0]) == "[1:4,1,2]"
