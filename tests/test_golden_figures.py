"""Byte-for-byte golden pins of the paper-figure listings.

The figures are the repo's human-checkable artifacts: any drift in the
symbol-table dump formats, ownership maps or the Figure-1 rule checklist
is a visible behaviour change and must be deliberate.  To refresh after
an intentional change::

    PYTHONPATH=src python - <<'PY'
    from repro.report import (figure1_text, figure2_table, figure3_maps,
                              figure4_layouts)
    import pathlib
    g = pathlib.Path("tests/golden")
    for name, fn in [("figure1", figure1_text), ("figure2", figure2_table),
                     ("figure3", figure3_maps), ("figure4", figure4_layouts)]:
        (g / f"{name}.txt").write_text(fn() + "\n")
    PY
"""

import pathlib

import pytest

from repro.report import (
    figure1_text, figure2_table, figure3_maps, figure4_layouts,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"

FIGURES = {
    "figure1": figure1_text,
    "figure2": figure2_table,
    "figure3": figure3_maps,
    "figure4": figure4_layouts,
}


@pytest.mark.parametrize("name", sorted(FIGURES))
@pytest.mark.msg_timing
def test_figure_matches_golden(name):
    expected = (GOLDEN / f"{name}.txt").read_text()
    assert FIGURES[name]() + "\n" == expected


def test_figure1_reports_all_pass():
    """Figure 1 is an executable checklist: every rule must hold."""
    text = (GOLDEN / "figure1.txt").read_text()
    assert "[FAIL]" not in text and text.count("[PASS]") == 11


@pytest.mark.msg_timing
def test_cli_figures_all_is_the_goldens_joined(capsys):
    from repro.cli import main

    assert main(["figures", "all"]) == 0
    out = capsys.readouterr().out
    expected = "\n\n".join(
        (GOLDEN / f"{n}.txt").read_text().rstrip("\n")
        for n in ("figure1", "figure2", "figure3", "figure4")
    )
    assert out == expected + "\n"
