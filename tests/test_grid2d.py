"""Programs on multi-dimensional processor grids.

The paper's example implementation assumes a fixed processor grid (2x2 in
Figures 2/3); these tests run whole IL+XDP programs with 2-D distributions
on 2-D grids, checking the column-major processor numbering end to end.
"""

import numpy as np
import pytest

from repro.core.codegen import lower
from repro.core.interp import Interpreter
from repro.core.ir.parser import parse_program
from repro.distributions import ProcessorGrid
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


def run(src, grid_shape, init=None, path="interp"):
    grid = ProcessorGrid(grid_shape)
    prog = parse_program(src)
    if path == "vm":
        runner = lower(prog, grid.size, grid=grid, model=FAST)
    else:
        runner = Interpreter(prog, grid.size, grid=grid, model=FAST)
    for name, arr in (init or {}).items():
        runner.write_global(name, np.asarray(arr, dtype=float))
    stats = runner.run()
    return runner, stats


class TestBlockBlock:
    SRC = """
array A[1:4,1:8] dist (BLOCK, BLOCK) seg (2,1)

iown(A[1:2,1:4]) : { A[1:2,1:4] = mypid }
iown(A[3:4,1:4]) : { A[3:4,1:4] = mypid }
iown(A[1:2,5:8]) : { A[1:2,5:8] = mypid }
iown(A[3:4,5:8]) : { A[3:4,5:8] = mypid }
"""

    def test_column_major_quadrants(self):
        it, _ = run(self.SRC, (2, 2))
        A = it.read_global("A")
        # Paper numbering: P1 top-left, P2 bottom-left, P3 top-right,
        # P4 bottom-right (column-major).
        assert np.all(A[0:2, 0:4] == 1)
        assert np.all(A[2:4, 0:4] == 2)
        assert np.all(A[0:2, 4:8] == 3)
        assert np.all(A[2:4, 4:8] == 4)

    def test_vm_agrees(self):
        a, _ = run(self.SRC, (2, 2))
        b, _ = run(self.SRC, (2, 2), path="vm")
        assert np.array_equal(a.read_global("A"), b.read_global("A"))


class TestTranspose2D:
    """A 2-D block transpose via ownership transfer on a 2x2 grid."""

    SRC = """
array A[1:4,1:4] dist (BLOCK, BLOCK) seg (2,2)

// P2 (block row 2, col 1) swaps ownership with P3 (block row 1, col 2).
mypid == 2 : { A[3:4,1:2] -=> {3} }
mypid == 3 : { A[1:2,3:4] -=> {2} }
mypid == 2 : { A[1:2,3:4] <=- }
mypid == 3 : { A[3:4,1:2] <=- }
mypid == 2 : { await(A[1:2,3:4]) : { A[1:2,3:4] = A[1:2,3:4] * 2 } }
mypid == 3 : { await(A[3:4,1:2]) : { A[3:4,1:2] = A[3:4,1:2] * 2 } }
"""

    def test_ownership_swap(self):
        a0 = np.arange(16.0).reshape(4, 4)
        it, stats = run(self.SRC, (2, 2), init={"A": a0})
        want = a0.copy()
        want[0:2, 2:4] *= 2
        want[2:4, 0:2] *= 2
        assert np.array_equal(it.read_global("A"), want)
        # Off-diagonal blocks swapped owners.
        st2, st3 = it.engine.symtabs[1], it.engine.symtabs[2]
        from repro.core.sections import section

        assert st2.iown("A", section((1, 2), (3, 4)))
        assert st3.iown("A", section((3, 4), (1, 2)))
        assert not st2.iown("A", section((3, 4), (1, 2)))


class TestMylb2D:
    def test_bounds_per_dimension(self):
        it, _ = run(
            "array A[1:6,1:6] dist (BLOCK, BLOCK) seg (1,1)\n\n"
            "iown(A[1,1]) : { A[1,1] = 1 }\n",
            (2, 2),
        )
        st = it.engine.symtabs
        # P1=(0,0): rows 1:3, cols 1:3.  P2=(1,0): rows 4:6, cols 1:3.
        assert (st[0].mylb("A", 1), st[0].myub("A", 2)) == (1, 3)
        assert (st[1].mylb("A", 1), st[1].myub("A", 1)) == (4, 6)
        assert (st[2].mylb("A", 2), st[2].myub("A", 2)) == (4, 6)
        assert (st[3].mylb("A", 1), st[3].mylb("A", 2)) == (4, 4)


class TestGridValidation:
    def test_grid_size_mismatch(self):
        from repro.core.errors import CompilationError

        with pytest.raises(CompilationError):
            Interpreter(
                parse_program("array A[1:4] dist (BLOCK) seg (1)\n"),
                3,
                grid=ProcessorGrid((2, 2)),
            )

    def test_linearised_mixed_rank(self):
        # One distributed dim on a 2x2 grid linearises to 4 (Figure 2's A).
        src = """
array A[1:4,1:8] dist (*, BLOCK) seg (4,2)

iown(A[*,2*mypid-1:2*mypid]) : { A[*,2*mypid-1:2*mypid] = mypid }
"""
        it, _ = run(src, (2, 2))
        A = it.read_global("A")
        for p in range(4):
            assert np.all(A[:, 2 * p : 2 * p + 2] == p + 1)
