"""Integration tests for the reference interpreter: whole IL+XDP programs
executed on the simulated machine, checked against the paper's semantics."""

import numpy as np
import pytest

from repro.core.errors import OwnershipError, XDPError
from repro.core.interp import Interpreter, run_program
from repro.core.ir.parser import parse_program
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


def run(src, nprocs, init=None, **kw):
    prog = parse_program(src)
    it = Interpreter(prog, nprocs, model=kw.pop("model", FAST), **kw)
    for name, arr in (init or {}).items():
        it.write_global(name, np.asarray(arr, dtype=float))
    stats = it.run()
    return it, stats


class TestSimpleExample:
    """Paper section 2.2: A[i] = A[i] + B[i] under owner-computes."""

    SRC = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist ({bdist}) seg (1)
array T[1:4] dist (BLOCK) seg (1)
scalar n = 8

do i = 1, n
  iown(B[i]) : {{ B[i] -> }}
  iown(A[i]) : {{
    T[mypid] <- B[i]
    await(T[mypid])
    A[i] = A[i] + T[mypid]
  }}
enddo
"""

    def test_aligned(self):
        it, stats = run(
            self.SRC.format(bdist="BLOCK"), 4,
            init={"A": np.arange(1, 9), "B": 10 * np.arange(1, 9)},
        )
        assert np.array_equal(it.read_global("A"), 11 * np.arange(1, 9.0))
        # Naive translation sends one message per element even when aligned
        # (self-messages): optimization removes them later.
        assert stats.total_messages == 8

    def test_misaligned(self):
        it, stats = run(
            self.SRC.format(bdist="CYCLIC"), 4,
            init={"A": np.arange(1, 9), "B": 10 * np.arange(1, 9)},
        )
        assert np.array_equal(it.read_global("A"), 11 * np.arange(1, 9.0))
        assert stats.total_messages == 8
        assert stats.unclaimed_messages == 0

    def test_two_procs(self):
        it, _ = run(
            self.SRC.format(bdist="BLOCK").replace("T[1:4]", "T[1:2]"), 2,
            init={"A": np.ones(8), "B": np.full(8, 2.0)},
        )
        assert np.all(it.read_global("A") == 3.0)


class TestOwnershipMigration:
    """Paper section 2.2, second fragment: move A's ownership to B's owners."""

    SRC = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
scalar n = 8

do i = 1, n
  iown(A[i]) and not iown(B[i]) : { A[i] -=> }
  iown(B[i]) and not iown(A[i]) : { A[i] <=- }
  await(A[i]) : { A[i] = A[i] + B[i] }
enddo
"""

    def test_result_and_final_ownership(self):
        it, stats = run(
            self.SRC, 4,
            init={"A": np.arange(1, 9), "B": 10 * np.arange(1, 9)},
        )
        assert np.array_equal(it.read_global("A"), 11 * np.arange(1, 9.0))
        # A's ownership now matches B's CYCLIC distribution.
        segB = it.segmentations["B"].distribution
        for pid in range(4):
            st = it.engine.symtabs[pid]
            for sec in segB.owned_sections(pid):
                assert st.iown("A", sec)

    def test_migration_message_count(self):
        _, stats = run(
            self.SRC, 4,
            init={"A": np.zeros(8), "B": np.zeros(8)},
        )
        # BLOCK vs CYCLIC over 4 procs: only A[1] and A[6] stay put
        # (owner(A[i])==owner(B[i]) iff block owner == cyclic owner).
        assert stats.total_messages == 6


class TestComputeRules:
    def test_unowned_reference_makes_rule_false(self):
        # Guard references B[i]'s *value*; only B[i]'s owner passes, so the
        # assignment must also be ownership-correct only there.
        src = """
array A[1:4] dist (BLOCK) seg (1)
array B[1:4] dist (BLOCK) seg (1)

do i = 1, 4
  iown(A[i]) and B[i] > 0 : { A[i] = 5 }
enddo
"""
        it, _ = run(src, 4, init={"A": np.zeros(4), "B": [1, -1, 1, -1]})
        assert np.array_equal(it.read_global("A"), [5, 0, 5, 0])

    def test_general_boolean_rules(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)

do i = 1, 8
  iown(A[i]) and mypid > 2 : { A[i] = mypid }
enddo
"""
        it, _ = run(src, 4, init={"A": np.zeros(8)})
        assert np.array_equal(it.read_global("A"), [0, 0, 0, 0, 3, 3, 4, 4])

    def test_await_false_when_unowned(self):
        # await on an unowned section skips the statement, no block.
        src = """
array A[1:4] dist (BLOCK) seg (1)

do i = 1, 4
  await(A[i]) : { A[i] = 1 }
enddo
"""
        it, stats = run(src, 4, init={"A": np.zeros(4)})
        assert np.all(it.read_global("A") == 1.0)

    def test_mylb_myub_guard(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)

do i = mylb(A[*], 1), myub(A[*], 1)
  A[i] = mypid
enddo
"""
        it, _ = run(src, 4, init={"A": np.zeros(8)})
        assert np.array_equal(it.read_global("A"), [1, 1, 2, 2, 3, 3, 4, 4])


class TestSectionOperations:
    def test_section_assignment(self):
        src = """
array A[1:4,1:8] dist (*, BLOCK) seg (4,2)

iown(A[*,2*mypid-1:2*mypid]) : { A[*,2*mypid-1:2*mypid] = mypid }
"""
        it, _ = run(src, 4)
        A = it.read_global("A")
        for p in range(4):
            assert np.all(A[:, 2 * p : 2 * p + 2] == p + 1)

    def test_vectorized_transfer(self):
        # One whole-section message instead of per-element messages.
        src = """
array A[1:8] dist (BLOCK) seg (4)
array R[1:8] dist (BLOCK) seg (4)

iown(A[1:4]) : { A[1:4] -> }
iown(R[5:8]) : {
  R[5:8] <- A[1:4]
  await(R[5:8])
}
"""
        it, stats = run(src, 2, init={"A": np.arange(8.0), "R": np.zeros(8)})
        assert stats.total_messages == 1
        assert np.array_equal(it.read_global("R")[4:], np.arange(4.0))

    def test_universal_array(self):
        src = """
array W[1:4] universal
array A[1:4] dist (BLOCK) seg (1)

do i = 1, 4
  W[i] = mypid * 10 + i
enddo
iown(A[mypid]) : { A[mypid] = W[mypid] }
"""
        it, _ = run(src, 4)
        assert np.array_equal(it.read_global("A"), [11, 22, 33, 44])

    def test_universal_transfer_rejected(self):
        src = """
array W[1:4] universal

W[1] ->
"""
        with pytest.raises(OwnershipError, match="universal"):
            run(src, 2)


class TestCalls:
    def test_fft1d_kernel(self):
        src = """
array F[1:8] dist (BLOCK) seg (8) dtype complex128

iown(F[1:8]) : { call fft1D(F[1:8]) }
"""
        prog = parse_program(src)
        it = Interpreter(prog, 1, model=FAST)
        x = np.arange(8.0) + 0j
        it.write_global("F", x)
        it.run()
        assert np.allclose(it.read_global("F"), np.fft.fft(x))

    def test_work_kernel_costs_time(self):
        src = "call work(1000)\n"
        _, stats = run(src, 1)
        assert stats.procs[0].compute_time >= 1000

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            run("call nosuch(1)\n", 1)


class TestControlFlow:
    def test_if_else(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)

if mypid % 2 == 0 then
  iown(A[mypid]) : { A[mypid] = 100 }
else
  iown(A[mypid]) : { A[mypid] = 200 }
endif
"""
        it, _ = run(src, 4)
        assert np.array_equal(it.read_global("A"), [200, 100, 200, 100])

    def test_negative_step_loop(self):
        src = """
array A[1:4] dist (*) universal
scalar k = 0

do i = 4, 1, -1
  k = k + 1
  A[i] = k
enddo
"""
        # universal with dist (*) is invalid decl syntax; use plain universal
        src = src.replace(" dist (*) universal", " universal")
        it, _ = run(src, 1)
        # A[4] set first (k=1) ... A[1] last (k=4)

    def test_zero_step_rejected(self):
        with pytest.raises(XDPError):
            run("do i = 1, 4, 0\nenddo\n", 1)

    def test_undefined_scalar(self):
        with pytest.raises(XDPError, match="undefined scalar"):
            run("x = y + 1\n", 1)


class TestPidSemantics:
    def test_mypid_is_one_based(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)

iown(A[mypid]) : { A[mypid] = mypid }
"""
        it, _ = run(src, 4)
        assert np.array_equal(it.read_global("A"), [1, 2, 3, 4])

    def test_directed_send_uses_one_based_pids(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)

mypid == 1 : { A[1] -> {2} }
mypid == 2 : {
  A[2] <- A[1]
  await(A[2])
}
"""
        it, stats = run(src, 2, init={"A": [7.0, 0.0]})
        assert it.engine.symtabs[1].read("A", __import__("repro.core.sections", fromlist=["section"]).section(2))[0] == 7.0

    def test_bad_destination(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)

mypid == 1 : { A[1] -> {9} }
"""
        with pytest.raises(XDPError, match="outside machine"):
            run(src, 2)

    def test_nprocs(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)

iown(A[mypid]) : { A[mypid] = nprocs }
"""
        it, _ = run(src, 4)
        assert np.all(it.read_global("A") == 4)


class TestRunProgram:
    def test_convenience_wrapper(self):
        it, stats = run_program(
            "array A[1:4] dist (BLOCK) seg (1)\n\n"
            "iown(A[mypid]) : { A[mypid] = 1 }\n",
            4,
            model=FAST,
        )
        assert np.all(it.read_global("A") == 1.0)
        assert stats.makespan > 0
