"""Tests for communication/computation overlap idioms.

Paper section 2.3: "[accessible()] can be used to allow a processor to
perform a background computation while awaiting data from another
processor" — expressed here in pure IL+XDP with a polling loop, and
checked to actually convert waiting time into useful work.
"""

import numpy as np
import pytest

from repro.core.codegen import lower
from repro.core.interp import Interpreter
from repro.core.ir.parser import parse_program
from repro.machine import MachineModel

MODEL = MachineModel(o_send=5, o_recv=5, alpha=500, per_byte=0.5)


def polling_source(background: bool) -> str:
    """P1 computes then sends; P2 either blocks on await or does chunks of
    background work while polling accessible()."""
    work_loop = (
        """
do t = 1, 40
  mypid == 2 and got == 0 and not accessible(X[2]) : { call work(25) }
  mypid == 2 and got == 0 and accessible(X[2]) : { got = t }
enddo
"""
        if background
        else ""
    )
    return f"""
array X[1:2] dist (BLOCK) seg (1)
scalar got = 0

mypid == 1 : {{
  call work(400)
  X[1] = 99
  X[1] -> {{2}}
}}
mypid == 2 : {{ X[2] <- X[1] }}
{work_loop}
mypid == 2 : {{
  await(X[2])
  X[2] = X[2] + 1
}}
"""


def run(background: bool, path: str = "interp"):
    prog = parse_program(polling_source(background))
    if path == "vm":
        runner = lower(prog, 2, model=MODEL)
    else:
        runner = Interpreter(prog, 2, model=MODEL)
    stats = runner.run()
    assert runner.read_global("X")[1] == 100.0
    return stats


class TestAccessiblePolling:
    def test_both_variants_correct(self):
        run(False)
        run(True)

    def test_background_work_reduces_idle(self):
        plain = run(False)
        poll = run(True)
        p2_plain = plain.procs[1]
        p2_poll = poll.procs[1]
        # The polling variant converts idle time into compute time.
        assert p2_poll.idle_time < p2_plain.idle_time
        assert p2_poll.compute_time > p2_plain.compute_time

    @pytest.mark.msg_timing
    def test_polling_overhead_is_bounded(self):
        plain = run(False)
        poll = run(True)
        # Polling is not free: every iteration pays two accessible()
        # lookups (the run-time checks the paper lets the compiler remove
        # when provably unnecessary).  The overhead stays bounded by the
        # loop's guard-evaluation cost, well under the work it recovers.
        p2_recovered = poll.procs[1].compute_time - plain.procs[1].compute_time
        overhead = poll.makespan - plain.makespan
        assert overhead < p2_recovered
        assert poll.makespan < plain.makespan * 1.35

    def test_vm_path_agrees(self):
        a = run(True, "interp")
        b = run(True, "vm")
        assert a.total_messages == b.total_messages


class TestRecvHoistOverlap:
    """Paper section 3.2: early receive initiation maximises overlap with
    non-blocking primitives."""

    def test_early_recv_initiation_beats_late(self):
        # Late initiation: receiver computes first, then initiates.
        late = """
array X[1:2] dist (BLOCK) seg (1)

mypid == 1 : { X[1] -> {2} }
mypid == 2 : {
  call work(1000)
  X[2] <- X[1]
  await(X[2])
}
"""
        # Early initiation: receive posted before the local work.
        early = """
array X[1:2] dist (BLOCK) seg (1)

mypid == 1 : { X[1] -> {2} }
mypid == 2 : {
  X[2] <- X[1]
  call work(1000)
  await(X[2])
}
"""
        out = {}
        for label, src in (("late", late), ("early", early)):
            it = Interpreter(parse_program(src), 2, model=MODEL)
            out[label] = it.run().makespan
        # With non-blocking binding the early initiation fully hides the
        # message latency behind the 1000-unit computation.
        assert out["early"] <= out["late"]
