"""Tests for the standalone destination-binding pass (paper section 3.2)."""

import numpy as np
import pytest

from repro.core.interp import Interpreter
from repro.core.ir.nodes import SendStmt
from repro.core.ir.parser import parse_program
from repro.core.ir.visitor import walk_stmts
from repro.core.opt import DestinationBinding, PassManager
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)

# The paper's literal section-2.2 listing: unannotated sends.
PAPER = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
array T[1:4] dist (BLOCK) seg (1)
scalar n = 8

do i = 1, n
  iown(B[i]) : { B[i] -> }
  iown(A[i]) : {
    T[mypid] <- B[i]
    await(T[mypid])
    A[i] = A[i] + T[mypid]
  }
enddo
"""


def sends_of(program):
    return [s for s in walk_stmts(program.body) if isinstance(s, SendStmt)]


class TestDestinationBinding:
    def test_binds_paper_listing(self):
        res = PassManager([DestinationBinding()]).run(parse_program(PAPER), 4)
        assert any("bound send" in r for r in res.reports)
        (send,) = sends_of(res.program)
        assert send.dests is not None and len(send.dests) == 1
        from repro.core.ir.printer import print_expr

        # A is BLOCK(8 over 4): owner(A[i]) = (i-1)/2 + 1.
        assert print_expr(send.dests[0]) == "(i - 1) / 2 + 1"

    def test_bound_program_still_correct(self):
        res = PassManager([DestinationBinding()]).run(parse_program(PAPER), 4)
        it = Interpreter(res.program, 4, model=FAST)
        a0 = np.arange(1.0, 9)
        b0 = 10 * np.arange(1.0, 9)
        it.write_global("A", a0)
        it.write_global("B", b0)
        stats = it.run()
        assert np.array_equal(it.read_global("A"), a0 + b0)
        assert stats.unclaimed_messages == 0

    def test_binding_makes_repeated_sweeps_safe(self):
        """The literal listing inside an outer sweep loop is racy with pool
        matching; the pass repairs it."""
        sweeps_src = PAPER.replace(
            "do i = 1, n", "do t = 1, 3\n  do i = 1, n"
        ).replace("enddo\n", "  enddo\nenddo\n", 1)
        prog = parse_program(sweeps_src)
        res = PassManager([DestinationBinding()]).run(prog, 4)
        assert any("bound send" in r for r in res.reports)
        it = Interpreter(res.program, 4, model=FAST)
        a0 = np.zeros(8)
        b0 = np.arange(1.0, 9)
        it.write_global("A", a0)
        it.write_global("B", b0)
        it.run()
        assert np.array_equal(it.read_global("A"), 3 * b0)

    def test_skips_already_bound(self):
        src = PAPER.replace("B[i] ->", "B[i] -> {1}")
        res = PassManager([DestinationBinding()]).run(parse_program(src), 4)
        assert any("no opportunities" in r for r in res.reports)

    def test_skips_section_receiver(self):
        src = """
array A[1:8] dist (BLOCK) seg (4)
array B[1:8] dist (BLOCK) seg (4)

iown(B[1:4]) : { B[1:4] -> }
iown(A[5:8]) : {
  A[5:8] <- B[1:4]
  await(A[5:8])
}
"""
        res = PassManager([DestinationBinding()]).run(parse_program(src), 2)
        # Receiver guard is a section: no single closed-form owner.
        assert any("no opportunities" in r for r in res.reports)

    def test_in_default_pipeline(self):
        from repro.core.opt import optimize

        res = optimize(parse_program(PAPER), 4, level=1)
        assert any("destination-binding" in r for r in res.reports)
