"""Differential validation of the static communication verifier.

Every program in the seeded battery (:mod:`tests.fuzz.gen_programs`) runs
through both the static verifier and the strict reference engine; the two
oracles must agree in both load-bearing directions:

* **no false negatives** — a program the verifier calls *clean* must run
  to completion on the strict engine (no deadlock, no stale read, no
  protocol violation);
* **no silent failures** — a program the strict engine rejects must carry
  at least one verifier finding (error, or a documented conservatism
  warning).

The verifier is deliberately conservative, so the reverse directions are
*measured*, not asserted: the false-positive rate (verifier errors on
engine-clean programs) is reported by ``test_report_rates`` and recorded
in ``docs/VERIFIER.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.analysis.verify_comm import CommReport, verify_communication
from repro.core.errors import XDPError
from repro.core.interp import run_program
from repro.core.ir.parser import parse_program

from .fuzz.gen_programs import (
    COLLECTIVE_FAMILIES, SHMEM_FAMILIES, FuzzProgram, generate_battery,
)

BATTERY_SIZE = 220   # acceptance floor is 200; a little margin
SMOKE_SIZE = 50      # the CI verify-fuzz-smoke subset (battery prefix)
BASE_SEED = 0
SHMEM_BATTERY_SIZE = 120  # shared-address fault battery (section 5 binding)


@dataclass
class Outcome:
    program: FuzzProgram
    report: CommReport
    engine_error: XDPError | None

    @property
    def engine_ok(self) -> bool:
        return self.engine_error is None


def _run_one(fp: FuzzProgram, backend: str | None = None) -> Outcome:
    kw = {} if backend is None else {"backend": backend}
    report = verify_communication(parse_program(fp.source), fp.nprocs, **kw)
    try:
        run_program(fp.source, fp.nprocs, strict=True, **kw)
        err = None
    except XDPError as e:
        err = e
    return Outcome(fp, report, err)


def _describe(o: Outcome) -> str:
    eng = "engine: ok" if o.engine_ok else f"engine: {o.engine_error!r}"
    return (
        f"--- {o.program.label} ---\n{o.program.source}\n"
        f"{o.report.format()}\n{eng}"
    )


_battery_cache: dict[int, list[Outcome]] = {}


def _outcomes(size: int) -> list[Outcome]:
    if size not in _battery_cache:
        _battery_cache[size] = [
            _run_one(fp) for fp in generate_battery(size, BASE_SEED)
        ]
    return _battery_cache[size]


def _check(outcomes: list[Outcome]) -> None:
    false_negatives = [
        o for o in outcomes if o.report.clean and not o.engine_ok
    ]
    assert not false_negatives, (
        f"{len(false_negatives)} verifier-clean program(s) failed on the "
        "strict engine:\n\n"
        + "\n\n".join(_describe(o) for o in false_negatives[:5])
    )
    silent = [
        o for o in outcomes if not o.engine_ok and not o.report.findings
    ]
    assert not silent, (
        f"{len(silent)} engine failure(s) with no verifier finding:\n\n"
        + "\n\n".join(_describe(o) for o in silent[:5])
    )


def test_smoke_subset():
    """The 50-program prefix used by CI's verify-fuzz-smoke job."""
    _check(_outcomes(SMOKE_SIZE))


def test_full_battery():
    _check(_outcomes(BATTERY_SIZE))


def test_good_programs_are_clean_and_run():
    """Correct-by-construction templates must satisfy both oracles exactly:
    the verifier proves them clean and the engine runs them."""
    bad = [
        o for o in _outcomes(BATTERY_SIZE)
        if o.program.mutation is None and not (o.report.clean and o.engine_ok)
    ]
    assert not bad, (
        f"{len(bad)} template instance(s) not clean+runnable:\n\n"
        + "\n\n".join(_describe(o) for o in bad[:5])
    )


def test_battery_is_deterministic():
    a = generate_battery(12, BASE_SEED)
    b = generate_battery(12, BASE_SEED)
    assert a == b
    assert generate_battery(6, BASE_SEED) == a[:6]


def test_battery_has_coverage():
    battery = generate_battery(BATTERY_SIZE, BASE_SEED)
    assert len(battery) == BATTERY_SIZE
    families = {fp.family for fp in battery}
    assert families == {"halo", "ring", "pool", "gather-scatter", "translated"}
    mutations = {fp.mutation for fp in battery if fp.mutation}
    # every documented fault class is represented
    assert mutations >= {
        "drop_send", "drop_recv", "double_recv", "drop_await",
        "wrong_dest", "wrong_tag", "unowned_read", "acquire_overlap",
    }


_shmem_cache: list[Outcome] = []


def _shmem_outcomes() -> list[Outcome]:
    """Shared-address fault battery, both oracles on the shmem binding."""
    if not _shmem_cache:
        _shmem_cache.extend(
            _run_one(fp, backend="shmem")
            for fp in generate_battery(
                SHMEM_BATTERY_SIZE, BASE_SEED, families=SHMEM_FAMILIES
            )
        )
    return _shmem_cache


def test_shmem_battery_directions():
    """The two oracle-agreement directions hold on the shared-address
    binding too: the verifier speaks prefetch/poststore/fence, the strict
    engine executes the shmem transport."""
    _check(_shmem_outcomes())


def test_shmem_good_programs_are_clean_and_run():
    bad = [
        o for o in _shmem_outcomes()
        if o.program.mutation is None and not (o.report.clean and o.engine_ok)
    ]
    assert not bad, (
        f"{len(bad)} shmem template instance(s) not clean+runnable:\n\n"
        + "\n\n".join(_describe(o) for o in bad[:5])
    )


def test_shmem_fault_classes_covered_and_flagged():
    """Both seeded shared-address fault classes occur in the battery and
    every instance is flagged by the verifier AND rejected by the strict
    engine — a missing fence or a store of unowned lines is never a
    warning-free pass."""
    outcomes = _shmem_outcomes()
    by_class = {
        m: [o for o in outcomes if o.program.mutation == m]
        for m in ("missing_fence", "store_before_ownership")
    }
    for mutation, members in by_class.items():
        assert members, f"no {mutation} mutants in the shmem battery"
        unflagged = [o for o in members if o.report.ok or o.engine_ok]
        assert not unflagged, (
            f"{len(unflagged)} {mutation} mutant(s) slipped through:\n\n"
            + "\n\n".join(_describe(o) for o in unflagged[:5])
        )


def test_shmem_vocabulary_in_findings():
    """Diagnostics on the shmem binding use section-5 vocabulary (fences,
    stores), not message-passing terms alone."""
    text = "\n".join(
        f.message
        for o in _shmem_outcomes() if o.report.findings
        for f in o.report.findings
    )
    assert "fence" in text
    assert "store" in text or "unowned" in text


def test_shmem_battery_leaves_default_battery_untouched():
    """SHMEM_FAMILIES is a separate dict: the pinned 220-program default
    battery must not contain shared-address templates (its recorded
    determinism and false-positive numbers depend on that)."""
    default = generate_battery(24, BASE_SEED)
    assert not any(fp.family.startswith("shmem") for fp in default)
    shmem = generate_battery(24, BASE_SEED, families=SHMEM_FAMILIES)
    assert {fp.family for fp in shmem} == set(SHMEM_FAMILIES)
    # determinism + prefix property hold for the shmem battery as well
    assert shmem[:12] == generate_battery(
        12, BASE_SEED, families=SHMEM_FAMILIES
    )


_coll_cache: list[Outcome] = []
COLL_BATTERY_SIZE = 60


def _coll_outcomes() -> list[Outcome]:
    """Collective fault battery: first-class ``coll`` statement bugs."""
    if not _coll_cache:
        _coll_cache.extend(
            _run_one(fp) for fp in generate_battery(
                COLL_BATTERY_SIZE, BASE_SEED, families=COLLECTIVE_FAMILIES
            )
        )
    return _coll_cache


def test_collective_battery_directions():
    """Both oracle-agreement directions hold on programs with first-class
    collectives: clean programs run, engine failures are flagged."""
    _check(_coll_outcomes())


def test_collective_good_programs_are_clean_and_run():
    bad = [
        o for o in _coll_outcomes()
        if o.program.mutation is None and not (o.report.clean and o.engine_ok)
    ]
    assert not bad, (
        f"{len(bad)} collective template instance(s) not clean+runnable:\n\n"
        + "\n\n".join(_describe(o) for o in bad[:5])
    )


def test_collective_fault_classes_covered_and_flagged():
    """Every seeded collective fault class occurs in the battery and every
    instance carries a verifier finding; the rendezvous faults are also
    engine failures (deadlock / protocol error), while disagreeing reduce
    ops are *silent at run time* — the chunks still rendezvous by tag —
    which is exactly why the static verifier must catch them."""
    outcomes = _coll_outcomes()
    by_class = {
        m: [o for o in outcomes if o.program.mutation == m]
        for m in ("missing_participant", "cardinality_mismatch",
                  "wrong_reduce_op")
    }
    for mutation, members in by_class.items():
        assert members, f"no {mutation} mutants in the collective battery"
        unflagged = [o for o in members if not o.report.findings]
        assert not unflagged, (
            f"{len(unflagged)} {mutation} mutant(s) without a finding:\n\n"
            + "\n\n".join(_describe(o) for o in unflagged[:5])
        )
    for o in by_class["missing_participant"]:
        assert not o.engine_ok
        assert any(f.code == "unmatched-collective-participant"
                   for f in o.report.findings), _describe(o)
    for o in by_class["cardinality_mismatch"]:
        assert not o.engine_ok
        assert any(f.code == "collective-cardinality"
                   for f in o.report.findings), _describe(o)
    # The runtime cannot see a reduce-op disagreement (tags match anyway).
    for o in by_class["wrong_reduce_op"]:
        assert o.engine_ok, _describe(o)
        assert not o.report.ok, _describe(o)


def test_collective_battery_leaves_default_battery_untouched():
    default = generate_battery(24, BASE_SEED)
    assert not any(fp.family.startswith("coll") for fp in default)
    coll = generate_battery(24, BASE_SEED, families=COLLECTIVE_FAMILIES)
    assert {fp.family for fp in coll} == set(COLLECTIVE_FAMILIES)
    assert coll[:12] == generate_battery(
        12, BASE_SEED, families=COLLECTIVE_FAMILIES
    )


def test_report_rates(capsys):
    """Measure (not assert) the verifier's conservatism on the battery.

    The printed table is the source of the numbers quoted in
    ``docs/VERIFIER.md``; regenerate with
    ``pytest tests/test_fuzz_differential.py::test_report_rates -s``.
    """
    outcomes = _outcomes(BATTERY_SIZE)
    good = [o for o in outcomes if o.program.mutation is None]
    mutants = [o for o in outcomes if o.program.mutation is not None]
    engine_bad = [o for o in outcomes if not o.engine_ok]
    caught_err = [o for o in engine_bad if not o.report.ok]
    caught_any = [o for o in engine_bad if o.report.findings]
    fp = [o for o in outcomes if o.engine_ok and not o.report.ok]
    with capsys.disabled():
        print(
            f"\n[fuzz-differential] battery={len(outcomes)} "
            f"(good={len(good)}, mutants={len(mutants)})\n"
            f"  engine failures: {len(engine_bad)} "
            f"(flagged as error: {len(caught_err)}, "
            f"flagged at all: {len(caught_any)})\n"
            f"  false positives (verifier error, engine ok): {len(fp)} "
            f"/ {len(outcomes)} = {len(fp) / len(outcomes):.1%}"
        )
    # direction guarantees, restated over the measured sets:
    assert len(caught_any) == len(engine_bad)
    # conservatism must stay bounded to be useful
    assert len(fp) / len(outcomes) <= 0.15, [o.program.label for o in fp]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
