"""Unit tests for the optimization passes (paper sections 2.2, 3.2, 4)."""

import numpy as np
import pytest

from repro.core.interp import Interpreter
from repro.core.ir.nodes import (
    Assign, BinOp, DoLoop, Guarded, Iown, Mylb, Mypid, RecvStmt, SendStmt,
)
from repro.core.ir.parser import parse_program, parse_statements
from repro.core.ir.printer import print_program
from repro.core.ir.verify import verify_program
from repro.core.opt import (
    AwaitSinking, Cleanup, ComputeRuleElimination, GuardHoisting, LoopFusion,
    MessageVectorization, PassManager, ReceiveHoisting, TransferElimination,
    optimize,
)
from repro.core.translate import translate
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


def run_pipeline(src, nprocs, passes, init=None, grid=None):
    prog = parse_program(src)
    pm = PassManager(passes)
    res = pm.run(prog, nprocs, grid)
    verify_program(res.program)
    its = []
    for p in (prog, res.program):
        it = Interpreter(p, nprocs, model=FAST)
        for name, arr in (init or {}).items():
            it.write_global(name, np.asarray(arr, dtype=float))
        stats = it.run()
        its.append((it, stats))
    return res, its


SEQ_ALIGNED = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (BLOCK) seg (1)
scalar n = 8

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""


class TestTransferElimination:
    def make(self, bdist):
        src = SEQ_ALIGNED.replace("(BLOCK) seg (1)\nscalar", f"({bdist}) seg (1)\nscalar")
        return translate(parse_program(src), 4)

    def test_aligned_removes_all_messages(self):
        naive = self.make("BLOCK")
        res = PassManager([TransferElimination(), Cleanup()]).run(naive, 4)
        assert any("removed transfer" in r for r in res.reports)
        it = Interpreter(res.program, 4, model=FAST)
        it.write_global("A", np.arange(8.0))
        it.write_global("B", np.ones(8))
        stats = it.run()
        assert stats.total_messages == 0
        assert np.array_equal(it.read_global("A"), np.arange(8.0) + 1)

    def test_misaligned_keeps_messages(self):
        naive = self.make("CYCLIC")
        res = PassManager([TransferElimination(), Cleanup()]).run(naive, 4)
        assert all("removed transfer" not in r for r in res.reports)

    def test_temp_decl_removed(self):
        naive = self.make("BLOCK")
        res = PassManager([TransferElimination(), Cleanup()]).run(naive, 4)
        assert all(d.name != "_T1" for d in res.program.decls)

    def test_symbolic_bounds_conservative(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (BLOCK) seg (1)
scalar n

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""
        naive = translate(parse_program(src), 4)
        res = PassManager([TransferElimination()]).run(naive, 4)
        # n unknown at compile time: no elimination.
        assert all("removed transfer" not in r for r in res.reports)


class TestComputeRuleElimination:
    def test_localizes_bounds(self):
        naive = translate(parse_program(SEQ_ALIGNED), 4)
        res = PassManager(
            [TransferElimination(), ComputeRuleElimination(), Cleanup()]
        ).run(naive, 4)
        (loop,) = res.program.body
        assert isinstance(loop, DoLoop)
        assert isinstance(loop.lo, BinOp) and loop.lo.op == "max"
        assert isinstance(loop.hi, BinOp) and loop.hi.op == "min"
        # Guard is gone.
        assert not any(isinstance(s, Guarded) for s in loop.body)

    def test_localized_guard_cost_drops(self):
        naive = translate(parse_program(SEQ_ALIGNED), 4)
        res, ((_, s_naive), (_, s_opt)) = run_pipeline(
            print_program(naive), 4,
            [TransferElimination(), ComputeRuleElimination(), Cleanup()],
            init={"A": np.zeros(8), "B": np.ones(8)},
        )
        assert s_opt.makespan < s_naive.makespan

    def test_mypid_substitution(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)

do p = 1, 4
  iown(A[*,p]) : {
    A[*,p] = p
  }
enddo
"""
        prog = parse_program(src)
        res = PassManager([ComputeRuleElimination()]).run(prog, 4)
        assert any("mypid" in r for r in res.reports)
        (assign,) = res.program.body
        assert isinstance(assign, Assign)
        it = Interpreter(res.program, 4, model=FAST)
        it.run()
        A = it.read_global("A")
        for p in range(4):
            assert np.all(A[:, p] == p + 1)

    def test_ownership_dirty_blocks_rewrite(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)

A[1] =>
do i = 1, 4
  iown(A[i]) : {
    A[i] = 1
  }
enddo
"""
        prog = parse_program(src)
        res = PassManager([ComputeRuleElimination()]).run(prog, 4)
        # A's ownership was moved before the loop: initial distribution is
        # not trustworthy, guard must stay.
        assert any("no opportunities" in r for r in res.reports)

    def test_redistribution_loop_gets_mypid(self):
        """The FFT redistribution loop (ownership ops *inside* the guarded
        body) is handled by the dynamic ownership simulation."""
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)

do p = 1, 4
  iown(A[*,p]) : {
    do m = 1, 4
      A[m,p] -=>
    enddo
    do m = 1, 4
      A[m,p] <=-
    enddo
  }
enddo
"""
        prog = parse_program(src)
        res = PassManager([ComputeRuleElimination()]).run(prog, 4)
        assert any("mypid" in r for r in res.reports)


class TestMessageVectorization:
    SRC = """
array A[1:16] dist (BLOCK) seg (4)
array B[1:16] dist (CYCLIC) seg (1)
scalar n = 16

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""

    def test_reduces_message_count(self):
        naive = translate(parse_program(self.SRC), 4)
        res = PassManager([MessageVectorization(), Cleanup()]).run(naive, 4)
        assert any("combined" in r for r in res.reports)
        for label, p in (("naive", naive), ("vec", res.program)):
            it = Interpreter(p, 4, model=FAST)
            it.write_global("A", np.zeros(16))
            it.write_global("B", np.arange(16.0))
            stats = it.run()
            assert np.array_equal(it.read_global("A"), np.arange(16.0)), label
            if label == "naive":
                naive_msgs = stats.total_messages
            else:
                assert stats.total_messages < naive_msgs

    def test_buffer_distributed_like_lhs(self):
        naive = translate(parse_program(self.SRC), 4)
        res = PassManager([MessageVectorization()]).run(naive, 4)
        buf = next(d for d in res.program.decls if d.name.startswith("_V"))
        assert buf.dist == "(BLOCK)"
        assert buf.bounds == ((1, 16),)

    def test_skips_when_symbolic(self):
        src = self.SRC.replace("scalar n = 16", "scalar n")
        naive = translate(parse_program(src), 4)
        res = PassManager([MessageVectorization()]).run(naive, 4)
        assert all("combined" not in r for r in res.reports)


class TestLoopFusion:
    def test_fuses_independent_loops(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (BLOCK) seg (1)

do i = 1, 8
  iown(A[i]) : { A[i] = 1 }
enddo
do j = 1, 8
  iown(B[j]) : { B[j] = 2 }
enddo
"""
        prog = parse_program(src)
        res = PassManager([LoopFusion()]).run(prog, 4)
        assert any("fused" in r for r in res.reports)
        assert len(res.program.body) == 1

    def test_fusion_result_correct(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (BLOCK) seg (1)

do i = 1, 8
  iown(A[i]) : { A[i] = i }
enddo
do j = 1, 8
  iown(B[j]) : { B[j] = j * 10 }
enddo
"""
        res, ((it0, _), (it1, _)) = run_pipeline(
            src, 4, [LoopFusion()], init={"A": np.zeros(8), "B": np.zeros(8)}
        )
        assert np.array_equal(it0.read_global("A"), it1.read_global("A"))
        assert np.array_equal(it0.read_global("B"), it1.read_global("B"))

    def test_rejects_cross_iteration_dependence(self):
        # Second loop reads A at i+1: B(i) would run before A(i+1) writes.
        src = """
array A[1:8] dist (*) universal
array B[1:8] dist (*) universal

do i = 1, 8
  A[i] = i
enddo
do j = 1, 7
  B[j] = A[j+1]
enddo
"""
        src = src.replace(" dist (*) universal", " universal")
        prog = parse_program(src)
        res = PassManager([LoopFusion()]).run(prog, 1)
        assert all("fused" not in r for r in res.reports)

    def test_fft_fusion_send_into_compute_loop(self):
        """Paper section 4: fusing the j-FFT loop with the send loop."""
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)

do j = 1, 4
  iown(A[*,j]) : { A[*,j] = A[*,j] + 1 }
enddo
do m = 1, 4
  iown(A[*,m]) : { A[*,m] -=> }
enddo
do m = 1, 4
  iown(A[*,m]) : { }
enddo
"""
        # Simplify: fuse compute loop with ownership-send loop.
        prog = parse_program(src)
        res = PassManager([Cleanup(), LoopFusion()]).run(prog, 4)
        assert any("fused" in r for r in res.reports)

    def test_rejects_ownership_query_after_release(self):
        """The XDP condition: fusing would move a query on A[j+1] before
        the release of A[j+1] in the first loop's later iteration."""
        src = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (BLOCK) seg (1)

do i = 1, 8
  iown(A[i]) : { A[i] -=> }
enddo
do j = 1, 8
  iown(A[min(j+1, 8)]) : { B[j] = 1 }
enddo
"""
        prog = parse_program(src)
        res = PassManager([LoopFusion()]).run(prog, 4)
        assert all("fused" not in r for r in res.reports)


class TestAwaitSinking:
    def test_sinks_into_loop(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)

await(A[*,mypid]) : {
  do i = 1, 4
    A[i,mypid] = A[i,mypid] * 2
  enddo
}
"""
        prog = parse_program(src)
        res = PassManager([AwaitSinking()]).run(prog, 4)
        assert any("moved await" in r for r in res.reports)
        (loop,) = res.program.body
        assert isinstance(loop, DoLoop)
        (g,) = loop.body.stmts
        assert isinstance(g, Guarded)

    def test_requires_loop_var_indexing(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)

await(A[*,mypid]) : {
  do i = 1, 4
    A[1,mypid] = A[1,mypid] + i
  enddo
}
"""
        prog = parse_program(src)
        res = PassManager([AwaitSinking()]).run(prog, 4)
        assert all("moved await" not in r for r in res.reports)

    def test_semantics_preserved(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)

await(A[*,mypid]) : {
  do i = 1, 4
    A[i,mypid] = A[i,mypid] + i
  enddo
}
"""
        res, ((it0, _), (it1, _)) = run_pipeline(
            src, 4, [AwaitSinking()], init={"A": np.zeros((4, 4))}
        )
        assert np.array_equal(it0.read_global("A"), it1.read_global("A"))


class TestGuardHoisting:
    def test_hoists_uniform_guard(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)

do i = 1, 4
  iown(A[i,mypid]) : { A[i,mypid] = 7 }
enddo
"""
        prog = parse_program(src)
        res = PassManager([GuardHoisting()]).run(prog, 4)
        assert any("hoisted" in r for r in res.reports)
        (g,) = res.program.body
        assert isinstance(g, Guarded)
        assert isinstance(g.body.stmts[0], DoLoop)

    def test_skips_partitioned_dim(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)

do i = 1, 8
  iown(A[i]) : { A[i] = 7 }
enddo
"""
        prog = parse_program(src)
        res = PassManager([GuardHoisting()]).run(prog, 4)
        # Ownership varies with i: hoisting iown(A[*]) would change truth.
        assert all("hoisted" not in r for r in res.reports)

    def test_semantics_preserved(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)

do i = 1, 4
  iown(A[i,mypid]) : { A[i,mypid] = i * 10 }
enddo
"""
        res, ((it0, _), (it1, _)) = run_pipeline(
            src, 4, [GuardHoisting()], init={"A": np.zeros((4, 4))}
        )
        assert np.array_equal(it0.read_global("A"), it1.read_global("A"))


class TestReceiveHoisting:
    def test_moves_recv_past_computation(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)
array C[1:2] dist (BLOCK) seg (1)

mypid == 1 : { A[1] -> {2} }
mypid == 2 : {
  C[2] = 5
  A[2] <- A[1]
  await(A[2])
}
"""
        prog = parse_program(src)
        res = PassManager([ReceiveHoisting()]).run(prog, 2)
        assert any("moved" in r for r in res.reports)
        # Inside the second guard, the receive now precedes the assignment.
        g = res.program.body.stmts[1]
        assert isinstance(g.body.stmts[0], RecvStmt)

    def test_does_not_cross_dependence(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)

mypid == 1 : { A[1] -> {2} }
mypid == 2 : {
  A[2] = 5
  A[2] <- A[1]
  await(A[2])
}
"""
        prog = parse_program(src)
        res = PassManager([ReceiveHoisting()]).run(prog, 2)
        g = res.program.body.stmts[1]
        assert isinstance(g.body.stmts[0], Assign)


class TestFullPipeline:
    def test_optimize_levels(self):
        naive = translate(parse_program(SEQ_ALIGNED), 4)
        r0 = optimize(naive, 4, level=0)
        assert r0.program == naive
        r1 = optimize(naive, 4, level=1)
        r2 = optimize(naive, 4, level=2)
        for res in (r1, r2):
            it = Interpreter(res.program, 4, model=FAST)
            it.write_global("A", np.zeros(8))
            it.write_global("B", np.ones(8))
            stats = it.run()
            assert stats.total_messages == 0
            assert np.all(it.read_global("A") == 1.0)

    def test_reports_collected(self):
        naive = translate(parse_program(SEQ_ALIGNED), 4)
        res = optimize(naive, 4)
        assert res.reports
        assert "transfer-elimination" in res.report_text()
