"""Unit tests for the code generator / VM path (paper section 3.2)."""

import numpy as np
import pytest

from repro.core.codegen import CompiledProgram, lower
from repro.core.errors import CompilationError, DeadlockError
from repro.core.interp import Interpreter
from repro.core.ir.parser import parse_program
from repro.core.opt import optimize
from repro.core.translate import translate
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)

SEQ = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
scalar n = 8

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""


def both_paths(program, nprocs=4, init=None, binding="nonblocking"):
    it = Interpreter(program, nprocs, model=FAST)
    cp = lower(program, nprocs, model=FAST, binding=binding)
    for name, arr in (init or {}).items():
        it.write_global(name, np.asarray(arr, dtype=float))
        cp.write_global(name, np.asarray(arr, dtype=float))
    return (it, it.run()), (cp, cp.run())


class TestVMAgreement:
    @pytest.mark.parametrize("strategy", ["owner-computes", "migrate"])
    def test_translated_programs(self, strategy):
        prog = translate(parse_program(SEQ), 4, strategy=strategy)
        (it, s1), (cp, s2) = both_paths(
            prog, init={"A": np.arange(8.0), "B": np.ones(8)}
        )
        assert np.array_equal(it.read_global("A"), cp.read_global("A"))
        assert s1.total_messages == s2.total_messages

    def test_optimized_program(self):
        prog = optimize(translate(parse_program(SEQ), 4), 4).program
        (it, s1), (cp, s2) = both_paths(
            prog, init={"A": np.arange(8.0), "B": np.ones(8)}
        )
        assert np.array_equal(it.read_global("A"), cp.read_global("A"))
        assert s1.total_messages == s2.total_messages

    def test_control_flow(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)
scalar k = 0

do i = 1, 8
  if i % 2 == 0 then
    k = k + 1
  else
    k = k - 1
  endif
  iown(A[i]) : { A[i] = k }
enddo
"""
        prog = parse_program(src)
        (it, _), (cp, _) = both_paths(prog, init={"A": np.zeros(8)})
        assert np.array_equal(it.read_global("A"), cp.read_global("A"))

    def test_negative_step_loop(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)

do i = 8, 1, -1
  iown(A[i]) : { A[i] = i * i }
enddo
"""
        prog = parse_program(src)
        (it, _), (cp, _) = both_paths(prog, init={"A": np.zeros(8)})
        assert np.array_equal(it.read_global("A"), cp.read_global("A"))

    def test_intrinsics_and_bounds(self):
        src = """
array A[1:16] dist (BLOCK) seg (4)

do i = max(1, mylb(A[*], 1)), min(16, myub(A[*], 1))
  A[i] = mypid * 100 + i
enddo
"""
        prog = parse_program(src)
        (it, _), (cp, _) = both_paths(prog, init={"A": np.zeros(16)})
        assert np.array_equal(it.read_global("A"), cp.read_global("A"))

    def test_kernel_call(self):
        src = """
array F[1:8] dist (BLOCK) seg (8) dtype complex128

iown(F[1:8]) : { call fft1D(F[1:8]) }
"""
        prog = parse_program(src)
        it = Interpreter(prog, 1, model=FAST)
        cp = lower(prog, 1, model=FAST)
        x = np.arange(8.0) + 0j
        it.write_global("F", x)
        cp.write_global("F", x)
        it.run()
        cp.run()
        assert np.allclose(it.read_global("F"), cp.read_global("F"))
        assert np.allclose(cp.read_global("F"), np.fft.fft(x))


class TestAwaitLowering:
    def test_await_rule_conjunct(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)

mypid == 1 : { A[1] -> {2} }
mypid == 2 : {
  A[2] <- A[1]
}
await(A[2]) and mypid == 2 : { A[2] = A[2] + 1 }
"""
        prog = parse_program(src)
        cp = lower(prog, 2, model=FAST)
        cp.write_global("A", np.array([5.0, 0.0]))
        cp.run()
        assert cp.read_global("A")[1] == 6.0

    def test_nested_await_rejected(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)

not await(A[1]) : { A[1] = 1 }
"""
        prog = parse_program(src)
        with pytest.raises(CompilationError, match="await"):
            lower(prog, 2)

    def test_await_false_when_unowned_skips(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)

do i = 1, 4
  await(A[i]) : { A[i] = 9 }
enddo
"""
        prog = parse_program(src)
        cp = lower(prog, 4, model=FAST)
        cp.run()
        assert np.all(cp.read_global("A") == 9.0)


class TestBinding:
    def test_blocking_binding_still_correct(self):
        prog = translate(parse_program(SEQ), 4)
        (it, s1), (cp, s2) = both_paths(
            prog, init={"A": np.zeros(8), "B": np.ones(8)}, binding="blocking"
        )
        assert np.array_equal(it.read_global("A"), cp.read_global("A"))

    def test_blocking_binding_slower(self):
        prog = translate(parse_program(SEQ), 4)
        cp_nb = lower(prog, 4, model=FAST, binding="nonblocking")
        cp_bl = lower(prog, 4, model=FAST, binding="blocking")
        for cp in (cp_nb, cp_bl):
            cp.write_global("A", np.zeros(8))
            cp.write_global("B", np.ones(8))
        s_nb = cp_nb.run()
        s_bl = cp_bl.run()
        assert s_bl.makespan >= s_nb.makespan

    def test_unknown_binding_rejected(self):
        prog = parse_program("array A[1:2] dist (BLOCK) seg (1)\n")
        with pytest.raises(CompilationError):
            lower(prog, 2, binding="rendezvous")


class TestVMDiagnostics:
    def test_deadlock_detected(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)

mypid == 2 : {
  A[2] <- A[1]
  await(A[2])
}
"""
        prog = parse_program(src)
        cp = lower(prog, 2, model=FAST)
        with pytest.raises(DeadlockError):
            cp.run()

    def test_read_global_requires_total_ownership(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)

mypid == 1 : { A[1] -=> }
"""
        prog = parse_program(src)
        cp = lower(prog, 2, model=FAST)
        cp.run()
        from repro.core.errors import OwnershipError

        with pytest.raises(OwnershipError, match="unowned"):
            cp.read_global("A")
