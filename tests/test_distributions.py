"""Unit tests for processor grids and HPF-style distributions.

Ground truth comes from the paper's own worked examples: Figure 2's arrays
A and B, Figure 3's 4x8 array, and the section-3.1 iown() walk-through.
"""

import pytest

from repro.core.errors import DistributionError
from repro.core.sections import section
from repro.distributions import (
    Block,
    BlockCyclic,
    Collapsed,
    Cyclic,
    Distribution,
    ProcessorGrid,
    parse_dist_spec,
)


class TestProcessorGrid:
    def test_linear(self):
        g = ProcessorGrid((4,))
        assert g.size == 4 and g.rank == 1
        assert g.coords_of(2) == (2,)
        assert g.pid_of((3,)) == 3

    def test_2x2_column_major_matches_paper(self):
        # Paper labels: P1=(0,0), P2=(1,0), P3=(0,1), P4=(1,1).
        g = ProcessorGrid((2, 2), order="F")
        assert g.coords_of(0) == (0, 0)
        assert g.coords_of(1) == (1, 0)
        assert g.coords_of(2) == (0, 1)
        assert g.coords_of(3) == (1, 1)
        assert g.label(2) == "P3"

    def test_row_major(self):
        g = ProcessorGrid((2, 3), order="C")
        assert g.coords_of(0) == (0, 0)
        assert g.coords_of(1) == (0, 1)
        assert g.coords_of(3) == (1, 0)

    def test_roundtrip(self):
        for order in ("F", "C"):
            g = ProcessorGrid((3, 2, 4), order=order)
            for pid in g.pids():
                assert g.pid_of(g.coords_of(pid)) == pid

    def test_reshape(self):
        g = ProcessorGrid((2, 2))
        lin = g.reshaped((4,))
        assert lin.size == 4 and lin.shape == (4,)
        with pytest.raises(DistributionError):
            g.reshaped((3,))

    def test_bad_shape(self):
        with pytest.raises(DistributionError):
            ProcessorGrid((0, 2))
        with pytest.raises(DistributionError):
            ProcessorGrid((2,), order="X")

    def test_out_of_range(self):
        g = ProcessorGrid((2, 2))
        with pytest.raises(DistributionError):
            g.coords_of(4)
        with pytest.raises(DistributionError):
            g.pid_of((2, 0))
        with pytest.raises(DistributionError):
            g.pid_of((0,))


class TestDimSpecs:
    def test_block_even(self):
        b = Block()
        # 8 elements, 4 procs -> blocks of 2
        assert b.owned(0, 1, 8, 4) == (section((1, 2)).dims[0],)
        assert [b.owner_coord(i, 1, 8, 4) for i in range(1, 9)] == [
            0, 0, 1, 1, 2, 2, 3, 3,
        ]

    def test_block_uneven(self):
        b = Block()
        # 10 elements, 4 procs -> ceil = 3: 3,3,3,1
        sizes = [sum(t.size for t in b.owned(q, 1, 10, 4)) for q in range(4)]
        assert sizes == [3, 3, 3, 1]

    def test_block_empty_tail(self):
        b = Block()
        # 5 elements, 4 procs -> ceil = 2: 2,2,1,0
        sizes = [sum(t.size for t in b.owned(q, 1, 5, 4)) for q in range(4)]
        assert sizes == [2, 2, 1, 0]
        assert b.owned(3, 1, 5, 4) == ()

    def test_cyclic(self):
        c = Cyclic()
        assert [c.owner_coord(i, 1, 8, 2) for i in range(1, 9)] == [
            0, 1, 0, 1, 0, 1, 0, 1,
        ]
        (t,) = c.owned(1, 1, 8, 2)
        assert list(t) == [2, 4, 6, 8]

    def test_block_cyclic(self):
        bc = BlockCyclic(2)
        # blocks of 2 dealt to 2 procs: q0 gets 1:2, 5:6; q1 gets 3:4, 7:8
        owned0 = bc.owned(0, 1, 8, 2)
        assert [list(t) for t in owned0] == [[1, 2], [5, 6]]
        owned1 = bc.owned(1, 1, 8, 2)
        assert [list(t) for t in owned1] == [[3, 4], [7, 8]]
        assert bc.owner_coord(5, 1, 8, 2) == 0
        assert bc.owner_coord(4, 1, 8, 2) == 1

    def test_block_cyclic_bad_blocksize(self):
        with pytest.raises(DistributionError):
            BlockCyclic(0)

    def test_collapsed(self):
        c = Collapsed()
        (t,) = c.owned(0, 1, 8, 1)
        assert t.lo == 1 and t.hi == 8

    def test_parse(self):
        assert isinstance(parse_dist_spec("BLOCK"), Block)
        assert isinstance(parse_dist_spec("cyclic"), Cyclic)
        assert isinstance(parse_dist_spec(" * "), Collapsed)
        bc = parse_dist_spec("CYCLIC(4)")
        assert isinstance(bc, BlockCyclic) and bc.blocksize == 4
        with pytest.raises(DistributionError):
            parse_dist_spec("RANDOM")
        with pytest.raises(DistributionError):
            parse_dist_spec("CYCLIC(x)")

    def test_spec_equality(self):
        assert Block() == Block()
        assert BlockCyclic(2) == BlockCyclic(2)
        assert BlockCyclic(2) != BlockCyclic(3)
        assert Block() != Cyclic()


class TestDistributionFig2A:
    """Array A[1:4,1:8] distributed (*, BLOCK) over a 2x2 grid (Figure 2)."""

    @pytest.fixture
    def dist(self):
        return Distribution(
            section((1, 4), (1, 8)),
            (Collapsed(), Block()),
            ProcessorGrid((2, 2)),
        )

    def test_linearised_dist_grid(self, dist):
        assert dist.dist_grid_shape == (4,)

    def test_each_proc_owns_4x2(self, dist):
        for pid in range(4):
            secs = dist.owned_sections(pid)
            assert len(secs) == 1
            assert secs[0].shape == (4, 2)
        assert dist.local_count(0) == 8

    def test_partition_is_exact(self, dist):
        total = sum(dist.local_count(p) for p in range(4))
        assert total == dist.index_space.size == 32

    def test_owner(self, dist):
        assert dist.owner((1, 1)) == 0
        assert dist.owner((4, 2)) == 0
        assert dist.owner((1, 3)) == 1
        assert dist.owner((3, 8)) == 3

    def test_owner_of_section(self, dist):
        assert dist.owner_of_section(section((1, 4), (3, 4))) == 1
        assert dist.owner_of_section(section((1, 4), (2, 3))) is None

    def test_spec_str(self, dist):
        assert dist.spec_str() == "(*, BLOCK)"


class TestDistributionFig2B:
    """Array B[1:16,1:16] distributed (BLOCK, CYCLIC) over a 2x2 grid."""

    @pytest.fixture
    def dist(self):
        return Distribution(
            section((1, 16), (1, 16)),
            (Block(), Cyclic()),
            ProcessorGrid((2, 2)),
        )

    def test_partition_shape(self, dist):
        # Each processor owns 8 contiguous rows x 8 cyclic columns.
        for pid in range(4):
            secs = dist.owned_sections(pid)
            assert len(secs) == 1
            assert secs[0].shape == (8, 8)

    def test_owner_respects_column_major_grid(self, dist):
        # P1=(0,0): rows 1:8, odd columns.
        assert dist.owner((1, 1)) == 0
        assert dist.owner((1, 2)) == 2  # col coord 1 -> (0,1) -> pid 2 ("P3")
        assert dist.owner((9, 1)) == 1  # row coord 1 -> (1,0) -> pid 1 ("P2")
        assert dist.owner((16, 16)) == 3

    def test_cyclic_cols_strided(self, dist):
        sec = dist.owned_sections(0)[0]
        assert sec.dims[1].step == 2
        assert list(sec.dims[1])[:3] == [1, 3, 5]

    def test_exact_cover(self, dist):
        total = sum(dist.local_count(p) for p in range(4))
        assert total == 256


class TestDistributionSec31:
    """C[1:4,1:8] (BLOCK, BLOCK) over 2x2: P3 owns rows 1:2, cols 5:8."""

    def test_p3_region(self):
        dist = Distribution(
            section((1, 4), (1, 8)),
            (Block(), Block()),
            ProcessorGrid((2, 2)),
        )
        # pid 2 is the paper's P3 under column-major numbering.
        (sec,) = dist.owned_sections(2)
        assert sec == section((1, 2), (5, 8))


class TestDistributionValidation:
    def test_rank_mismatch(self):
        with pytest.raises(DistributionError):
            Distribution(section((1, 4)), (Block(), Block()), ProcessorGrid((2,)))

    def test_fully_collapsed_rejected(self):
        with pytest.raises(DistributionError):
            Distribution(
                section((1, 4), (1, 4)),
                (Collapsed(), Collapsed()),
                ProcessorGrid((2,)),
            )

    def test_ambiguous_dist_grid(self):
        with pytest.raises(DistributionError):
            Distribution(
                section((1, 4), (1, 4), (1, 4)),
                (Block(), Block(), Collapsed()),
                ProcessorGrid((8,)),
            )

    def test_explicit_dist_grid(self):
        d = Distribution(
            section((1, 4), (1, 4), (1, 4)),
            (Block(), Block(), Collapsed()),
            ProcessorGrid((8,)),
            dist_grid_shape=(4, 2),
        )
        assert d.local_count(0) == 1 * 2 * 4

    def test_dist_grid_size_mismatch(self):
        with pytest.raises(DistributionError):
            Distribution(
                section((1, 4), (1, 4)),
                (Block(), Block()),
                ProcessorGrid((2, 2)),
                dist_grid_shape=(3, 2),
            )

    def test_out_of_bounds_owner(self):
        d = Distribution(section((1, 8)), (Block(),), ProcessorGrid((2,)))
        with pytest.raises(DistributionError):
            d.owner((9,))
        with pytest.raises(DistributionError):
            d.owner((1, 1))

    def test_strided_declared_bounds_rejected(self):
        d = Distribution(section((1, 8, 2)), (Block(),), ProcessorGrid((2,)))
        with pytest.raises(DistributionError):
            d.owner((1,))


class TestFFTDistribution:
    """The section-4 FFT array A[1:4,1:4,1:4] on 4 processors."""

    def test_initial_star_star_block(self):
        dist = Distribution(
            section((1, 4), (1, 4), (1, 4)),
            (Collapsed(), Collapsed(), Block()),
            ProcessorGrid((4,)),
        )
        # Processor i owns A[1:4, 1:4, i+1].
        for pid in range(4):
            (sec,) = dist.owned_sections(pid)
            assert sec == section((1, 4), (1, 4), pid + 1)

    def test_target_star_block_star(self):
        dist = Distribution(
            section((1, 4), (1, 4), (1, 4)),
            (Collapsed(), Block(), Collapsed()),
            ProcessorGrid((4,)),
        )
        for pid in range(4):
            (sec,) = dist.owned_sections(pid)
            assert sec == section((1, 4), pid + 1, (1, 4))
