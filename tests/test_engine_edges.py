"""Engine and end-to-end edge cases: self-messages, effect budgets,
strict modes, exotic dtypes/bounds/distributions."""

import numpy as np
import pytest

from repro.core.errors import DeadlockError, OwnershipError, ProtocolError
from repro.core.interp import Interpreter
from repro.core.ir.parser import parse_program
from repro.core.sections import section
from repro.distributions import Block, Distribution, ProcessorGrid, Segmentation
from repro.machine import (
    Compute,
    Engine,
    MachineModel,
    RecvInit,
    Send,
    TransferKind,
    WaitAccessible,
)

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


def linear(extent, nprocs, seg=1):
    dist = Distribution(section((1, extent)), (Block(),), ProcessorGrid((nprocs,)))
    return Segmentation(dist, (seg,))


class TestSelfMessages:
    def test_value_send_to_self(self):
        eng = Engine(2, FAST)
        eng.declare("X", linear(4, 2, 2))

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 5.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(0,))
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(2),
                )
                yield WaitAccessible("X", section(2))

        eng.run(prog)
        assert eng.symtabs[0].read("X", section(2))[0] == 5.0

    def test_ownership_roundtrip_self(self):
        eng = Engine(1, FAST)
        eng.declare("X", linear(2, 1, 1))

        def prog(ctx):
            yield WaitAccessible("X", section(1))
            yield Send(TransferKind.OWN_VALUE, "X", section(1), dests=(0,))
            yield RecvInit(TransferKind.OWN_VALUE, "X", section(1))
            yield WaitAccessible("X", section(1))

        eng.run(prog)
        assert eng.symtabs[0].iown("X", section(1))


class TestBudgetsAndErrors:
    def test_effect_budget_exhaustion(self):
        eng = Engine(1, FAST, max_effects=10)

        def prog(ctx):
            while True:
                yield Compute(1.0)

        with pytest.raises(DeadlockError, match="budget"):
            eng.run(prog)

    def test_unknown_effect_type(self):
        eng = Engine(1, FAST)

        def prog(ctx):
            yield "not an effect"

        with pytest.raises(TypeError):
            eng.run(prog)

    def test_acquiring_owned_section_fails(self):
        eng = Engine(2, FAST)
        eng.declare("X", linear(4, 2, 1))

        def prog(ctx):
            if ctx.pid == 0:
                yield RecvInit(TransferKind.OWN_VALUE, "X", section(1))

        with pytest.raises(OwnershipError, match="overlapping owned"):
            eng.run(prog)

    def test_owner_send_of_unowned_fails(self):
        eng = Engine(2, FAST)
        eng.declare("X", linear(4, 2, 1))

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.OWN_VALUE, "X", section(3))

        with pytest.raises(OwnershipError):
            eng.run(prog)


class TestMatchingFairness:
    """FIFO-by-seq matching must survive the indexed-matching rewrite when
    directed and unspecified-destination messages share one MessageName.

    The indexed engine keeps directed and pool messages (and per-processor
    vs global pending receives) in separate queues; these tests pin the
    requirement that claims still happen in global seq order."""

    def make_engine(self):
        eng = Engine(3, FAST)
        # W[1] lives on the master; R gives each processor two slots.
        eng.declare("W", linear(3, 3))
        eng.declare("R", linear(6, 3, 2))
        return eng

    def test_mixed_directed_and_pool_messages_claim_in_seq_order(self):
        eng = self.make_engine()
        got = {}

        def prog(ctx):
            if ctx.pid == 0:
                for value, dests in ((11.0, None), (22.0, (2,)), (33.0, None)):
                    ctx.symtab.write("W", section(1), value)
                    yield Send(TransferKind.VALUE, "W", section(1), dests=dests)
            elif ctx.pid == 1:
                for slot in (3, 4):
                    yield Compute(10.0)
                    yield RecvInit(
                        TransferKind.VALUE, "W", section(1),
                        into_var="R", into_sec=section(slot),
                    )
                    yield WaitAccessible("R", section(slot))
                    got[1, slot] = float(ctx.symtab.read("R", section(slot))[0])
            else:
                yield Compute(20.0)
                yield RecvInit(
                    TransferKind.VALUE, "W", section(1),
                    into_var="R", into_sec=section(5),
                )
                yield WaitAccessible("R", section(5))
                got[2, 5] = float(ctx.symtab.read("R", section(5))[0])

        eng.run(prog)
        # P2's first receive claims the seq-earliest pool message (11); the
        # directed message (22) waits for P3 even though 33 arrived later.
        assert got[1, 3] == 11.0
        assert got[2, 5] == 22.0
        assert got[1, 4] == 33.0

    def test_pool_message_beats_later_directed_message(self):
        eng = self.make_engine()
        got = {}

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("W", section(1), 11.0)
                yield Send(TransferKind.VALUE, "W", section(1))  # pool
                ctx.symtab.write("W", section(1), 22.0)
                yield Send(TransferKind.VALUE, "W", section(1), dests=(1,))
            elif ctx.pid == 1:
                for slot in (3, 4):
                    yield Compute(30.0)
                    yield RecvInit(
                        TransferKind.VALUE, "W", section(1),
                        into_var="R", into_sec=section(slot),
                    )
                    yield WaitAccessible("R", section(slot))
                    got[slot] = float(ctx.symtab.read("R", section(slot))[0])

        eng.run(prog)
        # Both messages are claimable by P2; seq order wins, so the pool
        # message (sent first) is claimed before the directed one.
        assert got[3] == 11.0
        assert got[4] == 22.0

    def test_pending_receives_claimed_in_seq_order_by_late_messages(self):
        eng = self.make_engine()
        got = {}

        def prog(ctx):
            if ctx.pid == 0:
                yield Compute(100.0)  # all receives are pending by now
                for value, dests in ((11.0, None), (22.0, (2,)), (33.0, None)):
                    ctx.symtab.write("W", section(1), value)
                    yield Send(TransferKind.VALUE, "W", section(1), dests=dests)
            elif ctx.pid == 1:
                for slot in (3, 4):
                    yield RecvInit(
                        TransferKind.VALUE, "W", section(1),
                        into_var="R", into_sec=section(slot),
                    )
                    yield Compute(5.0)
                for slot in (3, 4):
                    yield WaitAccessible("R", section(slot))
                    got[1, slot] = float(ctx.symtab.read("R", section(slot))[0])
            else:
                yield Compute(10.0)
                yield RecvInit(
                    TransferKind.VALUE, "W", section(1),
                    into_var="R", into_sec=section(5),
                )
                yield WaitAccessible("R", section(5))
                got[2, 5] = float(ctx.symtab.read("R", section(5))[0])

        eng.run(prog)
        # Pool message 11 matches the seq-earliest pending receive (P2's
        # first); directed 22 skips to P3's receive; pool 33 falls through
        # to P2's second — FIFO within each claim path, by global seq.
        assert got[1, 3] == 11.0
        assert got[2, 5] == 22.0
        assert got[1, 4] == 33.0


class TestStrictEndToEnd:
    def test_strict_rejects_unmatched_sends(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)

iown(A[1]) : { A[1] -> }
"""
        it = Interpreter(parse_program(src), 2, model=FAST, strict=True)
        with pytest.raises(ProtocolError):
            it.run()

    def test_strict_rejects_transitional_read(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)
array R[1:2] dist (BLOCK) seg (1)

mypid == 1 : {
  A[1] <- A[2]
  R[1] = A[1]
}
mypid == 2 : { A[2] -> {1} }
"""
        it = Interpreter(parse_program(src), 2, model=FAST, strict=True)
        with pytest.raises(OwnershipError, match="transitional"):
            it.run()

    def test_nonstrict_allows_transitional_read(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)
array R[1:2] dist (BLOCK) seg (1)

mypid == 1 : {
  A[1] <- A[2]
  R[1] = A[1]
  await(A[1])
}
mypid == 2 : { A[2] -> {1} }
"""
        it = Interpreter(parse_program(src), 2, model=FAST)
        stats = it.run()  # value unpredictable, execution legal
        assert stats.unclaimed_messages == 0


class TestExoticPrograms:
    def test_complex_dtype_end_to_end(self):
        src = """
array Z[1:4] dist (BLOCK) seg (1) dtype complex128

do i = 1, 4
  iown(Z[i]) : { Z[i] = Z[i] * 2 }
enddo
"""
        prog = parse_program(src)
        it = Interpreter(prog, 2, model=FAST)
        z0 = np.array([1 + 1j, 2 - 1j, 3j, -4 + 0j])
        it.write_global("Z", z0)
        it.run()
        assert np.array_equal(it.read_global("Z"), 2 * z0)

    def test_negative_bounds_end_to_end(self):
        src = """
array A[-3:4] dist (BLOCK) seg (1)

do i = -3, 4
  iown(A[i]) : { A[i] = i }
enddo
"""
        it = Interpreter(parse_program(src), 2, model=FAST)
        it.run()
        assert np.array_equal(it.read_global("A"), np.arange(-3.0, 5.0))

    def test_block_cyclic_program(self):
        src = """
array A[1:12] dist (CYCLIC(2)) seg (2)

do i = 1, 12
  iown(A[i]) : { A[i] = mypid }
enddo
"""
        it = Interpreter(parse_program(src), 3, model=FAST)
        it.run()
        # CYCLIC(2) over 3 procs: 1,1,2,2,3,3,1,1,2,2,3,3
        want = [1, 1, 2, 2, 3, 3, 1, 1, 2, 2, 3, 3]
        assert list(it.read_global("A")) == want

    def test_strided_section_transfer(self):
        src = """
array A[1:8] dist (BLOCK) seg (4)
array R[1:8] dist (BLOCK) seg (4)

mypid == 1 : { A[1:4] -> {2} }
mypid == 2 : {
  R[5:8] <- A[1:4]
  await(R[5:8])
  R[5:8:2] = R[5:8:2] * 10
}
"""
        it = Interpreter(parse_program(src), 2, model=FAST)
        it.write_global("A", np.arange(1.0, 9))
        it.write_global("R", np.zeros(8))
        it.run()
        assert list(it.read_global("R")[4:]) == [10.0, 2.0, 30.0, 4.0]

    def test_deep_loop_nest(self):
        src = """
array A[1:2,1:2,1:2] dist (*, *, BLOCK) seg (2,2,1)

do i = 1, 2
  do j = 1, 2
    do k = 1, 2
      iown(A[i,j,k]) : { A[i,j,k] = i * 100 + j * 10 + k }
    enddo
  enddo
enddo
"""
        it = Interpreter(parse_program(src), 2, model=FAST)
        it.run()
        A = it.read_global("A")
        assert A[0, 0, 0] == 111 and A[1, 1, 1] == 222
