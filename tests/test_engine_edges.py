"""Engine and end-to-end edge cases: self-messages, effect budgets,
strict modes, exotic dtypes/bounds/distributions."""

import numpy as np
import pytest

from repro.core.errors import DeadlockError, OwnershipError, ProtocolError
from repro.core.interp import Interpreter
from repro.core.ir.parser import parse_program
from repro.core.sections import section
from repro.distributions import Block, Distribution, ProcessorGrid, Segmentation
from repro.machine import (
    Compute,
    Engine,
    MachineModel,
    RecvInit,
    Send,
    TransferKind,
    WaitAccessible,
)

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


def linear(extent, nprocs, seg=1):
    dist = Distribution(section((1, extent)), (Block(),), ProcessorGrid((nprocs,)))
    return Segmentation(dist, (seg,))


class TestSelfMessages:
    def test_value_send_to_self(self):
        eng = Engine(2, FAST)
        eng.declare("X", linear(4, 2, 2))

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 5.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(0,))
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(2),
                )
                yield WaitAccessible("X", section(2))

        eng.run(prog)
        assert eng.symtabs[0].read("X", section(2))[0] == 5.0

    def test_ownership_roundtrip_self(self):
        eng = Engine(1, FAST)
        eng.declare("X", linear(2, 1, 1))

        def prog(ctx):
            yield WaitAccessible("X", section(1))
            yield Send(TransferKind.OWN_VALUE, "X", section(1), dests=(0,))
            yield RecvInit(TransferKind.OWN_VALUE, "X", section(1))
            yield WaitAccessible("X", section(1))

        eng.run(prog)
        assert eng.symtabs[0].iown("X", section(1))


class TestBudgetsAndErrors:
    def test_effect_budget_exhaustion(self):
        eng = Engine(1, FAST, max_effects=10)

        def prog(ctx):
            while True:
                yield Compute(1.0)

        with pytest.raises(DeadlockError, match="budget"):
            eng.run(prog)

    def test_unknown_effect_type(self):
        eng = Engine(1, FAST)

        def prog(ctx):
            yield "not an effect"

        with pytest.raises(TypeError):
            eng.run(prog)

    def test_acquiring_owned_section_fails(self):
        eng = Engine(2, FAST)
        eng.declare("X", linear(4, 2, 1))

        def prog(ctx):
            if ctx.pid == 0:
                yield RecvInit(TransferKind.OWN_VALUE, "X", section(1))

        with pytest.raises(OwnershipError, match="overlapping owned"):
            eng.run(prog)

    def test_owner_send_of_unowned_fails(self):
        eng = Engine(2, FAST)
        eng.declare("X", linear(4, 2, 1))

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.OWN_VALUE, "X", section(3))

        with pytest.raises(OwnershipError):
            eng.run(prog)


class TestStrictEndToEnd:
    def test_strict_rejects_unmatched_sends(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)

iown(A[1]) : { A[1] -> }
"""
        it = Interpreter(parse_program(src), 2, model=FAST, strict=True)
        with pytest.raises(ProtocolError):
            it.run()

    def test_strict_rejects_transitional_read(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)
array R[1:2] dist (BLOCK) seg (1)

mypid == 1 : {
  A[1] <- A[2]
  R[1] = A[1]
}
mypid == 2 : { A[2] -> {1} }
"""
        it = Interpreter(parse_program(src), 2, model=FAST, strict=True)
        with pytest.raises(OwnershipError, match="transitional"):
            it.run()

    def test_nonstrict_allows_transitional_read(self):
        src = """
array A[1:2] dist (BLOCK) seg (1)
array R[1:2] dist (BLOCK) seg (1)

mypid == 1 : {
  A[1] <- A[2]
  R[1] = A[1]
  await(A[1])
}
mypid == 2 : { A[2] -> {1} }
"""
        it = Interpreter(parse_program(src), 2, model=FAST)
        stats = it.run()  # value unpredictable, execution legal
        assert stats.unclaimed_messages == 0


class TestExoticPrograms:
    def test_complex_dtype_end_to_end(self):
        src = """
array Z[1:4] dist (BLOCK) seg (1) dtype complex128

do i = 1, 4
  iown(Z[i]) : { Z[i] = Z[i] * 2 }
enddo
"""
        prog = parse_program(src)
        it = Interpreter(prog, 2, model=FAST)
        z0 = np.array([1 + 1j, 2 - 1j, 3j, -4 + 0j])
        it.write_global("Z", z0)
        it.run()
        assert np.array_equal(it.read_global("Z"), 2 * z0)

    def test_negative_bounds_end_to_end(self):
        src = """
array A[-3:4] dist (BLOCK) seg (1)

do i = -3, 4
  iown(A[i]) : { A[i] = i }
enddo
"""
        it = Interpreter(parse_program(src), 2, model=FAST)
        it.run()
        assert np.array_equal(it.read_global("A"), np.arange(-3.0, 5.0))

    def test_block_cyclic_program(self):
        src = """
array A[1:12] dist (CYCLIC(2)) seg (2)

do i = 1, 12
  iown(A[i]) : { A[i] = mypid }
enddo
"""
        it = Interpreter(parse_program(src), 3, model=FAST)
        it.run()
        # CYCLIC(2) over 3 procs: 1,1,2,2,3,3,1,1,2,2,3,3
        want = [1, 1, 2, 2, 3, 3, 1, 1, 2, 2, 3, 3]
        assert list(it.read_global("A")) == want

    def test_strided_section_transfer(self):
        src = """
array A[1:8] dist (BLOCK) seg (4)
array R[1:8] dist (BLOCK) seg (4)

mypid == 1 : { A[1:4] -> {2} }
mypid == 2 : {
  R[5:8] <- A[1:4]
  await(R[5:8])
  R[5:8:2] = R[5:8:2] * 10
}
"""
        it = Interpreter(parse_program(src), 2, model=FAST)
        it.write_global("A", np.arange(1.0, 9))
        it.write_global("R", np.zeros(8))
        it.run()
        assert list(it.read_global("R")[4:]) == [10.0, 2.0, 30.0, 4.0]

    def test_deep_loop_nest(self):
        src = """
array A[1:2,1:2,1:2] dist (*, *, BLOCK) seg (2,2,1)

do i = 1, 2
  do j = 1, 2
    do k = 1, 2
      iown(A[i,j,k]) : { A[i,j,k] = i * 100 + j * 10 + k }
    enddo
  enddo
enddo
"""
        it = Interpreter(parse_program(src), 2, model=FAST)
        it.run()
        A = it.read_global("A")
        assert A[0, 0, 0] == 111 and A[1, 1, 1] == 222
