"""Tests for the figure-regeneration module (paper Figures 1–4)."""

import pytest

from repro.core.sections import section
from repro.distributions import (
    Block,
    Collapsed,
    Distribution,
    ProcessorGrid,
    Segmentation,
)
from repro.report import (
    figure1_check,
    figure1_text,
    figure2_table,
    figure3_maps,
    figure4_layouts,
    ownership_map,
    segment_map,
)


class TestFigure1:
    @pytest.mark.msg_timing
    def test_every_rule_passes(self):
        rows = figure1_check()
        failures = [r for r, _, ok in rows if not ok]
        assert not failures, f"Figure-1 rules failing: {failures}"

    def test_covers_all_statement_forms(self):
        rules = {r for r, _, _ in figure1_check()}
        for expected in ("mypid", "mylb/myub", "iown(X)", "accessible(X)",
                         "await(X)", "E ->", "E -> S", "E =>", "E -=>",
                         "states", "unowned"):
            assert expected in rules

    @pytest.mark.msg_timing
    def test_text_render(self):
        text = figure1_text()
        assert "PASS" in text and "FAIL" not in text


class TestFigure2:
    def test_matches_paper_columns(self):
        text = figure2_table()
        # A: rank 2, (4,8), (*, BLOCK), segments (2,1), 4 of them.
        assert "(4, 8)" in text and "(*, BLOCK)" in text and "(2, 1)" in text
        # B: (16,16), (BLOCK, CYCLIC), segments (4,2), 8 of them.
        assert "(16, 16)" in text and "(BLOCK, CYCLIC)" in text
        assert "(4, 2)" in text

    def test_segment_counts(self):
        text = figure2_table()
        a_line = next(l for l in text.splitlines() if " A " in l)
        b_line = next(l for l in text.splitlines() if " B " in l)
        assert a_line.rstrip().endswith("4")
        assert b_line.rstrip().endswith("8")

    def test_descriptors_rendered(self):
        assert figure2_table().count("segdesc") == 12  # 4 + 8

    def test_other_processor(self):
        text = figure2_table(pid=2)
        assert "P3" in text


class TestFigure3:
    def test_p3_highlighted(self):
        text = figure3_maps()
        assert "P3" in text
        assert "(BLOCK, BLOCK), segments (2,1)" in text
        assert "(*, BLOCK), segments (4,1)" in text

    def test_panel_count(self):
        assert figure3_maps().count("ownership:") == 4


class TestFigure4:
    def test_before_after(self):
        text = figure4_layouts()
        assert "before: (*, *, BLOCK)" in text
        assert "after:  (*, BLOCK, *)" in text
        # P1 owns plane 1 before and row-slab 1 after.
        assert "[1:4,1,1], [1:4,2,1]" in text
        assert "[1:4,1,1], [1:4,1,2]" in text


class TestRenderers:
    def test_ownership_map_values(self):
        dist = Distribution(
            section((1, 2), (1, 4)), (Collapsed(), Block()), ProcessorGrid((2,))
        )
        text = ownership_map(dist)
        rows = text.splitlines()
        assert len(rows) == 2
        assert rows[0].split() == ["P1", "P1", "P2", "P2"]

    def test_segment_map_marks_only_pid(self):
        dist = Distribution(
            section((1, 2), (1, 4)), (Collapsed(), Block()), ProcessorGrid((2,))
        )
        seg = Segmentation(dist, (2, 1))
        text = segment_map(seg, 0)
        assert "s1" in text and "." in text
        assert "s3" not in text  # only two segments on P1

    def test_rank_guard(self):
        dist = Distribution(section((1, 8)), (Block(),), ProcessorGrid((2,)))
        with pytest.raises(ValueError):
            ownership_map(dist)
        with pytest.raises(ValueError):
            segment_map(Segmentation(dist, (2,)), 0)
