"""Elementwise array-expression semantics in IL+XDP (section-valued
operands in assignments and expressions)."""

import numpy as np
import pytest

from repro.core.codegen import lower
from repro.core.interp import Interpreter
from repro.core.ir.parser import parse_program
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


def run(src, nprocs=1, init=None, path="interp"):
    prog = parse_program(src)
    runner = (
        lower(prog, nprocs, model=FAST)
        if path == "vm"
        else Interpreter(prog, nprocs, model=FAST)
    )
    for k, v in (init or {}).items():
        runner.write_global(k, np.asarray(v, dtype=float))
    runner.run()
    return runner


class TestElementwise:
    @pytest.mark.parametrize("path", ["interp", "vm"])
    def test_section_plus_section(self, path):
        src = """
array A[1:6] dist (BLOCK) seg (6)
array B[1:6] dist (BLOCK) seg (6)

A[1:6] = A[1:6] + B[1:6] * 2
"""
        r = run(src, 1, {"A": np.arange(6.0), "B": np.ones(6)}, path)
        assert np.array_equal(r.read_global("A"), np.arange(6.0) + 2)

    def test_strided_subsection_arithmetic(self):
        src = """
array A[1:8] dist (BLOCK) seg (8)

A[1:8:2] = A[1:8:2] * 10
"""
        r = run(src, 1, {"A": np.arange(1.0, 9)})
        assert list(r.read_global("A")) == [10, 2, 30, 4, 50, 6, 70, 8]

    def test_scalar_broadcast_into_section(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,4)

A[2:3,*] = 7
"""
        r = run(src, 1)
        A = r.read_global("A")
        assert np.all(A[1:3, :] == 7) and np.all(A[0] == 0)

    def test_min_max_elementwise(self):
        src = """
array A[1:4] dist (BLOCK) seg (4)
array B[1:4] dist (BLOCK) seg (4)

A[1:4] = max(A[1:4], B[1:4])
"""
        r = run(src, 1, {"A": [1, 5, 2, 8], "B": [3, 3, 3, 3]})
        assert list(r.read_global("A")) == [3, 5, 3, 8]

    def test_universal_section_ops(self):
        src = """
array W[1:4] universal
array A[1:4] dist (BLOCK) seg (4)

W[1:4] = W[1:4] + 1
A[1:4] = W[1:4] * W[1:4]
"""
        r = run(src, 1, {"W": np.arange(4.0)})
        assert list(r.read_global("A")) == [1.0, 4.0, 9.0, 16.0]

    def test_2d_subarray_combination(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,4)

A[1:2,1:2] = A[3:4,3:4] + 100
"""
        a0 = np.arange(16.0).reshape(4, 4)
        r = run(src, 1, {"A": a0})
        A = r.read_global("A")
        assert np.array_equal(A[0:2, 0:2], a0[2:4, 2:4] + 100)

    def test_vm_and_interp_agree_on_sections(self):
        src = """
array A[1:8] dist (BLOCK) seg (8)

A[2:7] = A[2:7] - A[2:7] / 2.0
"""
        a = run(src, 1, {"A": np.arange(8.0)}, "interp").read_global("A")
        b = run(src, 1, {"A": np.arange(8.0)}, "vm").read_global("A")
        assert np.array_equal(a, b)

    def test_distributed_local_section_update(self):
        # Each processor updates only its own block via mylb/myub.
        src = """
array A[1:8] dist (BLOCK) seg (4)

A[mylb(A[*], 1):myub(A[*], 1)] = mypid
"""
        r = run(src, 2)
        assert list(r.read_global("A")) == [1, 1, 1, 1, 2, 2, 2, 2]
