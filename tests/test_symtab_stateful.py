"""Stateful property test of the run-time symbol table.

A hypothesis rule-based machine drives one processor's table through
random sequences of writes, reads, sub-section ownership releases and
re-acquisitions, checking after every step against a simple point-set +
dict model:

* ``iown`` answers exactly the model's membership;
* reads of accessible data return the last written values;
* ``mylb``/``myub`` agree with the model's min/max;
* the memory accountant's live bytes equal 8x the owned element count.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.sections import Section, Triplet, group_into_triplets, section
from repro.distributions import Block, Distribution, ProcessorGrid, Segmentation
from repro.runtime import MAXINT, MININT, RuntimeSymbolTable

N = 24  # extent of the 1-D test array
PID = 0


def _subsections(lo: int, hi: int):
    """Strategy for non-empty subsections of lo..hi (unit or strided)."""
    return st.tuples(
        st.integers(lo, hi), st.integers(0, hi - lo), st.integers(1, 3)
    ).map(
        lambda t: Section((Triplet(t[0], min(hi, t[0] + t[1]), t[2]),))
    )


class SymtabMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.st = RuntimeSymbolTable(PID)
        dist = Distribution(section((1, N)), (Block(),), ProcessorGrid((2,)))
        self.st.declare("X", Segmentation(dist, (4,)))
        # Model: owned points and their values.
        self.owned: set[int] = set(range(1, N // 2 + 1))
        self.values: dict[int, float] = {i: 0.0 for i in self.owned}
        self.counter = 0.0

    # ------------------------------------------------------------------ #

    def _owned_subsection(self, sec: Section) -> bool:
        return set(p[0] for p in sec) <= self.owned

    @rule(sec=_subsections(1, N))
    def write_owned(self, sec):
        if not self._owned_subsection(sec):
            return
        self.counter += 1.0
        vals = np.full(sec.shape, self.counter)
        self.st.write("X", sec, vals)
        for (p,) in sec:
            self.values[p] = self.counter

    @rule(sec=_subsections(1, N))
    def read_matches_model(self, sec):
        if not self._owned_subsection(sec):
            return
        got = self.st.read("X", sec)
        want = np.array([self.values[p] for (p,) in sec]).reshape(sec.shape)
        assert np.array_equal(got, want)

    @rule(sec=_subsections(1, N), with_value=st.booleans())
    def release(self, sec, with_value):
        pts = {p[0] for p in sec}
        if not pts <= self.owned:
            return
        vals = self.st.release_ownership("X", sec, with_value=with_value)
        if with_value:
            want = np.array([self.values[p] for (p,) in sec]).reshape(sec.shape)
            assert np.array_equal(vals, want)
        self.owned -= pts
        for p in pts:
            del self.values[p]

    @rule(sec=_subsections(1, N), data=st.floats(-10, 10))
    def acquire(self, sec, data):
        pts = {p[0] for p in sec}
        if pts & self.owned:
            return
        self.st.acquire_ownership("X", sec)
        self.st.complete_ownership_receive(
            "X", sec, np.full(sec.shape, data)
        )
        self.owned |= pts
        for p in pts:
            self.values[p] = data

    # ------------------------------------------------------------------ #

    @invariant()
    def iown_matches_model(self):
        # Spot-check a few sections each step (full check is O(N^2)).
        for lo, hi in ((1, 4), (5, 12), (13, N), (1, N)):
            sec = section((lo, hi))
            want = set(range(lo, hi + 1)) <= self.owned
            assert self.st.iown("X", sec) == want

    @invariant()
    def bounds_match_model(self):
        if self.owned:
            assert self.st.mylb("X", 1) == min(self.owned)
            assert self.st.myub("X", 1) == max(self.owned)
        else:
            assert self.st.mylb("X", 1) == MAXINT
            assert self.st.myub("X", 1) == MININT

    @invariant()
    def memory_accounting_matches(self):
        assert self.st.owned_elements("X") == len(self.owned)
        assert self.st.memory.live_bytes == 8 * len(self.owned)

    @invariant()
    def segments_are_disjoint(self):
        seen: set[int] = set()
        for d in self.st.entry("X").segdescs:
            for (p,) in d.segment:
                assert p not in seen, "overlapping segment descriptors"
                seen.add(p)
        assert seen == self.owned


TestSymtabStateful = SymtabMachine.TestCase
TestSymtabStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
