"""Unit tests for the F90 triplet section algebra (paper section 2.1, 3.1)."""

import pytest

from repro.core.sections import (
    Section,
    Triplet,
    covers,
    disjoint_cover_equal,
    section,
    triplet,
)


class TestTripletConstruction:
    def test_scalar(self):
        t = triplet(5)
        assert t.lo == t.hi == 5
        assert t.size == 1
        assert list(t) == [5]

    def test_simple_range(self):
        t = Triplet(1, 8)
        assert t.size == 8
        assert list(t) == list(range(1, 9))

    def test_strided(self):
        t = Triplet(1, 7, 2)
        assert t.size == 4
        assert list(t) == [1, 3, 5, 7]

    def test_hi_snaps_to_member(self):
        t = Triplet(1, 8, 2)
        assert t.hi == 7
        assert t.size == 4

    def test_negative_step_normalises(self):
        t = Triplet(7, 1, -2)
        assert (t.lo, t.hi, t.step) == (1, 7, 2)
        assert list(t) == [1, 3, 5, 7]

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            Triplet(1, 5, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Triplet(5, 1, 1)

    def test_singleton_step_canonical(self):
        assert Triplet(4, 4, 3) == Triplet(4, 4, 1)

    def test_negative_indices(self):
        t = Triplet(-5, 5, 5)
        assert list(t) == [-5, 0, 5]


class TestTripletQueries:
    def test_contains(self):
        t = Triplet(2, 10, 2)
        assert 2 in t and 10 in t and 6 in t
        assert 3 not in t and 0 not in t and 12 not in t

    def test_is_contiguous(self):
        assert Triplet(1, 5).is_contiguous()
        assert Triplet(3, 3, 1).is_contiguous()
        assert not Triplet(1, 5, 2).is_contiguous()

    def test_len(self):
        assert len(Triplet(0, 9, 3)) == 4


class TestTripletIntersect:
    def test_same(self):
        t = Triplet(1, 10, 3)
        assert t.intersect(t) == t

    def test_unit_overlap(self):
        assert Triplet(1, 5).intersect(Triplet(3, 8)) == Triplet(3, 5)

    def test_disjoint_ranges(self):
        assert Triplet(1, 3).intersect(Triplet(5, 9)) is None

    def test_incompatible_residues(self):
        # evens vs odds
        assert Triplet(0, 10, 2).intersect(Triplet(1, 9, 2)) is None

    def test_strided_vs_unit(self):
        assert Triplet(1, 20, 3).intersect(Triplet(5, 15)) == Triplet(7, 13, 3)

    def test_crt_intersection(self):
        # 1 mod 3 meets 2 mod 5 -> 7 mod 15
        a = Triplet(1, 100, 3)
        b = Triplet(2, 100, 5)
        inter = a.intersect(b)
        assert inter == Triplet(7, 97, 15)

    def test_crt_no_solution(self):
        # 0 mod 4 vs 2 mod 8: 2 mod 8 is even but ≡2 (mod 4) != 0
        assert Triplet(0, 64, 4).intersect(Triplet(2, 66, 8)) is None

    def test_commutative(self):
        a, b = Triplet(2, 30, 4), Triplet(0, 30, 6)
        assert a.intersect(b) == b.intersect(a)

    def test_scalar_member(self):
        assert Triplet(4, 4).intersect(Triplet(0, 10, 2)) == Triplet(4, 4)
        assert Triplet(5, 5).intersect(Triplet(0, 10, 2)) is None

    def test_contains_triplet(self):
        assert Triplet(0, 20, 2).contains_triplet(Triplet(4, 12, 4))
        assert not Triplet(0, 20, 2).contains_triplet(Triplet(1, 11, 2))
        assert not Triplet(0, 10, 2).contains_triplet(Triplet(0, 12, 2))


class TestSection:
    def test_rank_and_size(self):
        s = section((1, 4), (1, 8))
        assert s.rank == 2
        assert s.size == 32
        assert s.shape == (4, 8)

    def test_paper_example_syntax(self):
        # C[1, 5:7] from paper section 3.1
        s = section(1, (5, 7))
        assert s.size == 3
        assert str(s) == "[1,5:7]"

    def test_membership(self):
        s = section((1, 4), (2, 8, 2))
        assert (1, 2) in s and (4, 8) in s
        assert (1, 3) not in s
        assert (5, 2) not in s
        assert (1,) not in s  # rank mismatch

    def test_iteration_row_major(self):
        s = section((1, 2), (1, 2))
        assert list(s) == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_intersect(self):
        a = section((1, 4), (1, 8))
        b = section((3, 6), (5, 12))
        assert a.intersect(b) == section((3, 4), (5, 8))

    def test_intersect_empty(self):
        a = section((1, 4), (1, 4))
        b = section((1, 4), (5, 8))
        assert a.intersect(b) is None

    def test_intersect_rank_mismatch(self):
        with pytest.raises(ValueError):
            section((1, 4)).intersect(section((1, 4), (1, 4)))

    def test_contains_section(self):
        big = section((1, 10), (1, 10))
        assert big.contains_section(section((2, 5), (3, 9, 3)))
        assert not big.contains_section(section((2, 11), (3, 9)))

    def test_bounding_box(self):
        s = section((1, 9, 4), (2, 8, 3))
        assert s.bounding_box() == section((1, 9), (2, 8))

    def test_empty_rank_rejected(self):
        with pytest.raises(ValueError):
            Section(())

    def test_is_contiguous(self):
        assert section((1, 4), (1, 8)).is_contiguous()
        assert not section((1, 4), (1, 8, 2)).is_contiguous()


class TestCoverage:
    """The union-coverage test at the heart of the section-3.1 iown()."""

    def test_paper_iown_example(self):
        # C[1:4,1:8] (BLOCK,BLOCK) over 2x2; P3 owns rows 1:2, cols 5:8,
        # segmented 2x1 -> segments (1:2,5) (1:2,6) (1:2,7) (1:2,8).
        segs = [section((1, 2), c) for c in (5, 6, 7, 8)]
        query = section(1, (5, 7))
        # Intersections are (1,5),(1,6),(1,7),null; union == query.
        inters = [query.intersect(s) for s in segs]
        assert [i.size if i else None for i in inters] == [1, 1, 1, None]
        assert disjoint_cover_equal(query, segs)

    def test_partial_cover_fails(self):
        segs = [section((1, 2), c) for c in (5, 6)]
        assert not disjoint_cover_equal(section(1, (5, 7)), segs)

    def test_overlapping_parts_detected(self):
        with pytest.raises(ValueError):
            disjoint_cover_equal(
                section((1, 4)), [section((1, 3)), section((2, 4))]
            )

    def test_general_covers_with_overlap(self):
        assert covers(section((1, 4)), [section((1, 3)), section((2, 4))])

    def test_general_covers_gap(self):
        assert not covers(section((1, 5)), [section((1, 2)), section((4, 5))])

    def test_covers_disjoint_flag(self):
        segs = [section((i, i + 1)) for i in range(1, 9, 2)]
        assert covers(section((1, 8)), segs, disjoint=True)

    def test_covers_refuses_huge_general_query(self):
        huge = section((1, 3000), (1, 3000))
        with pytest.raises(ValueError):
            covers(huge, [huge])

    def test_exact_cover_of_strided_query(self):
        query = section((1, 9, 2))  # {1,3,5,7,9}
        parts = [section((1, 5)), section((6, 10))]
        assert disjoint_cover_equal(query, parts)
