"""Shared test configuration.

The tier-1 suite runs in CI under both transfer-operator bindings
(``REPRO_BACKEND=msg`` and ``REPRO_BACKEND=shmem``).  Semantics tests
pass on both; tests that pin message-passing *timing* (makespans, golden
figures, deadlock-report text, trace event kinds) are marked
``msg_timing`` and skipped on the shared-address binding, where the same
programs legally finish at different virtual times.
"""

import os

import pytest


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_BACKEND", "msg") == "msg":
        return
    skip = pytest.mark.skip(
        reason="pins message-passing timing/diagnostics; "
        "REPRO_BACKEND selects another binding"
    )
    for item in items:
        if "msg_timing" in item.keywords:
            item.add_marker(skip)
