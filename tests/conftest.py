"""Shared test configuration.

The tier-1 suite runs in CI under both transfer-operator bindings
(``REPRO_BACKEND=msg`` and ``REPRO_BACKEND=shmem``).  Semantics tests
pass on both; tests that pin message-passing *timing* (makespans, golden
figures, deadlock-report text, trace event kinds) are marked
``msg_timing`` and skipped on the shared-address binding, where the same
programs legally finish at different virtual times.

The session-level ``_no_leaked_proc_shm`` guard asserts that the ``proc``
backend's real-parallelism runs — including interrupted and SIGKILLed
ones — reclaimed every ``/dev/shm`` segment they created.
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _no_leaked_proc_shm():
    """Fail the session if any proc-backend shared-memory segment leaks.

    Every segment the ``proc`` backend creates is named under a known
    prefix precisely so this sweep can see it; receivers unlink on
    delivery, the parent sweeps its run prefix in a ``finally``, and a
    registry ``atexit`` covers interpreter death — so any name still
    alive at teardown is a genuine leak in that chain.
    """
    from repro.machine.transport.proc import leaked_shm_segments

    before = set(leaked_shm_segments())
    yield
    leaked = sorted(set(leaked_shm_segments()) - before)
    assert not leaked, (
        f"proc backend leaked {len(leaked)} shared-memory segment(s) "
        f"into /dev/shm: {leaked}"
    )


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_BACKEND", "msg") == "msg":
        return
    skip = pytest.mark.skip(
        reason="pins message-passing timing/diagnostics; "
        "REPRO_BACKEND selects another binding"
    )
    for item in items:
        if "msg_timing" in item.keywords:
            item.add_marker(skip)
