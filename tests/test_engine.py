"""Unit/integration tests for the discrete-event SPMD engine, using
hand-written node programs (generators of effects)."""

import numpy as np
import pytest

from repro.core.errors import (
    BudgetExhaustedError,
    DeadlockError,
    OwnershipError,
    ProtocolError,
)
from repro.core.sections import section
from repro.core.states import SegmentState
from repro.distributions import Block, Distribution, ProcessorGrid, Segmentation
from repro.machine import (
    Compute,
    Engine,
    Log,
    MachineModel,
    RecvInit,
    Send,
    TransferKind,
    WaitAccessible,
)


def linear_seg(name_extent: int, nprocs: int, seg: int = 1) -> Segmentation:
    dist = Distribution(
        section((1, name_extent)), (Block(),), ProcessorGrid((nprocs,))
    )
    return Segmentation(dist, (seg,))


class TestComputeOnly:
    def test_clocks_advance_independently(self):
        eng = Engine(2)

        def prog(ctx):
            yield Compute(10.0 * (ctx.pid + 1))

        stats = eng.run(prog)
        assert stats.procs[0].finish_time == 10.0
        assert stats.procs[1].finish_time == 20.0
        assert stats.makespan == 20.0

    def test_flop_accounting(self):
        eng = Engine(1)

        def prog(ctx):
            yield Compute(5.0, flops=5)
            yield Compute(3.0, flops=3)

        stats = eng.run(prog)
        assert stats.procs[0].compute_time == 8.0
        assert stats.procs[0].flops == 8


class TestValueTransfer:
    def make_engine(self, **kw):
        eng = Engine(2, MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0), **kw)
        eng.declare("X", linear_seg(2, 2))
        return eng

    def test_directed_send_recv(self):
        eng = self.make_engine()

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 42.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(2),
                )
                yield WaitAccessible("X", section(2))

        stats = eng.run(prog)
        assert eng.symtabs[1].read("X", section(2))[0] == 42.0
        assert stats.total_messages == 1
        assert stats.unclaimed_messages == 0

    @pytest.mark.msg_timing
    def test_latency_respected(self):
        eng = self.make_engine()

        def prog(ctx):
            if ctx.pid == 0:
                yield Compute(100.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(2),
                )
                yield WaitAccessible("X", section(2))

        stats = eng.run(prog)
        # P2: recv overhead 1; then idle until 100 (compute) + 1 (o_send) + 10 (alpha).
        assert stats.procs[1].finish_time == pytest.approx(111.0)
        assert stats.procs[1].idle_time == pytest.approx(110.0)

    def test_unspecified_recipient(self):
        eng = self.make_engine()

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "X", section(1))  # E -> (unspecified)
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(2),
                )
                yield WaitAccessible("X", section(2))

        stats = eng.run(prog)
        assert stats.unclaimed_messages == 0

    def test_send_before_recv_and_after(self):
        """Matching works regardless of initiation order."""
        eng = self.make_engine()

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 7.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
                yield Compute(50.0)
            else:
                yield Compute(30.0)  # recv initiated after message arrival
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(2),
                )
                yield WaitAccessible("X", section(2))

        eng.run(prog)
        assert eng.symtabs[1].read("X", section(2))[0] == 7.0

    def test_sending_unowned_raises(self):
        eng = self.make_engine()

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "X", section(2), dests=(1,))

        with pytest.raises(OwnershipError):
            eng.run(prog)

    def test_size_mismatch_is_protocol_error(self):
        eng = Engine(2, MachineModel())
        eng.declare("X", linear_seg(4, 2, seg=2))

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "X", section((1, 2)), dests=(1,))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section((1, 2)),
                    into_var="X", into_sec=section(3),
                )

        with pytest.raises(ProtocolError):
            eng.run(prog)

    @pytest.mark.msg_timing
    def test_multicast_costs_per_destination(self):
        eng = Engine(3, MachineModel(o_send=5, o_recv=1, alpha=10, per_byte=0))
        eng.declare("X", linear_seg(3, 3))

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1, 2))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(ctx.pid + 1),
                )
                yield WaitAccessible("X", section(ctx.pid + 1))

        stats = eng.run(prog)
        assert stats.procs[0].msgs_sent == 2
        assert stats.procs[0].send_overhead == 10.0

    @pytest.mark.msg_timing
    def test_multicast_serialized_injection(self):
        """Pin the serialized-injection multicast model: each destination
        pays o_send on the sender's clock before its copy is stamped, so
        the i-th destination's arrival is o_send later than the (i-1)-th.
        The scheduler rewrite must not collapse this into one timestamp."""
        eng = Engine(3, MachineModel(o_send=5, o_recv=1, alpha=10, per_byte=0))
        eng.declare("X", linear_seg(3, 3))

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1, 2))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(ctx.pid + 1),
                )
                yield WaitAccessible("X", section(ctx.pid + 1))

        stats = eng.run(prog)
        # Copy for P2 injected at t=5, arrives 15; copy for P3 injected at
        # t=10, arrives 20.  Receivers wake exactly at arrival.
        assert stats.procs[1].finish_time == pytest.approx(15.0)
        assert stats.procs[2].finish_time == pytest.approx(20.0)
        assert (
            stats.procs[2].finish_time - stats.procs[1].finish_time
            == pytest.approx(eng.model.o_send)
        )


class TestOwnershipTransfer:
    def make_engine(self):
        eng = Engine(2, MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0))
        eng.declare("A", linear_seg(2, 2))
        return eng

    def test_ownership_and_value_move(self):
        eng = self.make_engine()

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("A", section(1), 3.5)
                yield WaitAccessible("A", section(1))
                yield Send(TransferKind.OWN_VALUE, "A", section(1))  # A[1] -=>
            else:
                yield RecvInit(TransferKind.OWN_VALUE, "A", section(1))  # A[1] <=-
                yield WaitAccessible("A", section(1))

        eng.run(prog)
        assert not eng.symtabs[0].iown("A", section(1))
        assert eng.symtabs[1].iown("A", section(1))
        assert eng.symtabs[1].read("A", section(1))[0] == 3.5
        # Sender's storage was reclaimed (its only element left).
        assert eng.symtabs[0].memory.live_bytes == 0
        assert eng.symtabs[0].memory.total_freed_bytes == 8

    @pytest.mark.msg_timing
    def test_ownership_only_move(self):
        eng = self.make_engine()

        def prog(ctx):
            if ctx.pid == 0:
                yield WaitAccessible("A", section(1))
                yield Send(TransferKind.OWNERSHIP, "A", section(1))  # A[1] =>
            else:
                yield RecvInit(TransferKind.OWNERSHIP, "A", section(1))  # A[1] <=
                yield WaitAccessible("A", section(1))

        stats = eng.run(prog)
        assert eng.symtabs[1].iown("A", section(1))
        # Header-only message.
        assert stats.total_bytes == 16

    def test_transitional_until_arrival(self):
        eng = self.make_engine()
        observed = {}

        def prog(ctx):
            if ctx.pid == 0:
                yield Compute(100.0)
                yield WaitAccessible("A", section(1))
                yield Send(TransferKind.OWN_VALUE, "A", section(1))
            else:
                yield RecvInit(TransferKind.OWN_VALUE, "A", section(1))
                yield Compute(1.0)
                observed["mid"] = ctx.symtab.state_of("A", section(1))
                yield WaitAccessible("A", section(1))
                observed["end"] = ctx.symtab.state_of("A", section(1))

        eng.run(prog)
        assert observed["mid"] is SegmentState.TRANSITIONAL
        assert observed["end"] is SegmentState.ACCESSIBLE


class TestLoadBalancing:
    """Section 2.7: multiple outstanding sends claimed by idle processors."""

    def test_first_come_first_served(self):
        eng = Engine(3, MachineModel(o_send=1, o_recv=1, alpha=5, per_byte=0.0))
        eng.declare("W", linear_seg(3, 3))
        got = {}

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("W", section(1), 11.0)
                yield Send(TransferKind.VALUE, "W", section(1))
                ctx.symtab.write("W", section(1), 22.0)
                yield Send(TransferKind.VALUE, "W", section(1))
            else:
                # P2 is busy; P3 is idle and claims first.
                if ctx.pid == 1:
                    yield Compute(1000.0)
                yield RecvInit(
                    TransferKind.VALUE, "W", section(1),
                    into_var="W", into_sec=section(ctx.pid + 1),
                )
                yield WaitAccessible("W", section(ctx.pid + 1))
                got[ctx.pid] = float(
                    ctx.symtab.read("W", section(ctx.pid + 1))[0]
                )

        eng.run(prog)
        # FIFO matching: pid2's receive is initiated first (t≈1) and gets
        # the first value; pid1 receives the second.
        assert got[2] == 11.0
        assert got[1] == 22.0


class TestDeadlockDetection:
    def test_await_never_satisfied(self):
        eng = Engine(2, MachineModel())
        eng.declare("A", linear_seg(2, 2))

        def prog(ctx):
            if ctx.pid == 0:
                yield RecvInit(
                    TransferKind.VALUE, "A", section(2),
                    into_var="A", into_sec=section(1),
                )
                yield WaitAccessible("A", section(1))  # nobody ever sends

        with pytest.raises(DeadlockError, match="awaiting"):
            eng.run(prog)

    @pytest.mark.msg_timing
    def test_report_text_is_pinned(self):
        """The deadlock diagnosis is a deterministic function of the
        deadlocked state: pids, pending tags and the pool listing are all
        sorted, so the full text can be pinned byte-for-byte."""
        from repro.core.interp import run_program

        src = (
            "array A[1:4] dist (BLOCK) seg (1)\n"
            "array B[1:4] dist (BLOCK) seg (1)\n"
            "\n"
            "mypid == 2 : {\n"
            "  B[2] <- A[1]\n"
            "  await(B[2]) : { B[2] = B[2] + 1 }\n"
            "}\n"
            "mypid == 3 : {\n"
            "  B[3] <- A[1]\n"
            "  await(B[3]) : { B[3] = B[3] + 1 }\n"
            "}\n"
            "mypid == 1 : { A[1] -> {4} }\n"
        )
        expected = (
            "deadlock: every live processor is blocked\n"
            "  P2 at t=26.00 awaiting B[2] (state transitional)\n"
            "    pending receive: value A[1] (into B[2], posted t=21.00)\n"
            "  P3 at t=27.00 awaiting B[3] (state transitional)\n"
            "    pending receive: value A[1] (into B[3], posted t=22.00)\n"
            "  1 unclaimed messages, 2 unmatched receives\n"
            "  unclaimed message pool:\n"
            "    msg#2 value A[1] P1->P4 @23.0->129.0"
        )
        for _ in range(2):  # identical across runs, not merely plausible
            with pytest.raises(DeadlockError) as ei:
                run_program(src, 4)
            assert str(ei.value) == expected

    def test_strict_flags_unmatched_traffic(self):
        eng = Engine(2, MachineModel(), strict=True)
        eng.declare("A", linear_seg(2, 2))

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "A", section(1), dests=(1,))

        with pytest.raises(ProtocolError, match="unclaimed"):
            eng.run(prog)

    def test_nonstrict_reports_unmatched(self):
        eng = Engine(2, MachineModel())
        eng.declare("A", linear_seg(2, 2))

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "A", section(1), dests=(1,))

        stats = eng.run(prog)
        assert stats.unclaimed_messages == 1


class TestEngineReuse:
    """A second run() on the same Engine must start from fresh per-run
    state: no stale unclaimed messages, pending receives, trace, or logs
    from the previous run (symbol tables persist by design)."""

    def make_engine(self, **kw):
        eng = Engine(2, MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0), **kw)
        eng.declare("X", linear_seg(2, 2))
        return eng

    def test_second_run_does_not_see_stale_messages(self):
        eng = self.make_engine()

        def prog(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))

        s1 = eng.run(prog)
        s2 = eng.run(prog)
        # Without the reset the second run would report 2 unclaimed.
        assert s1.unclaimed_messages == 1
        assert s2.unclaimed_messages == 1

    def test_second_run_does_not_accumulate_logs_and_trace(self):
        eng = self.make_engine(trace=True)

        def prog(ctx):
            yield Log(f"hello from {ctx.pid}")

        s1 = eng.run(prog)
        s2 = eng.run(prog)
        assert len(s1.logs) == len(s2.logs) == 2
        assert len(s1.trace) == len(s2.trace)

    def test_stale_receive_cannot_claim_new_run_message(self):
        eng = self.make_engine()

        def recv_only(ctx):
            if ctx.pid == 1:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(2),
                )

        def send_only(ctx):
            if ctx.pid == 0:
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))

        s1 = eng.run(recv_only)
        assert s1.unmatched_receives == 1
        s2 = eng.run(send_only)
        # The first run's pending receive is gone: the send goes unclaimed.
        assert s2.unmatched_receives == 0
        assert s2.unclaimed_messages == 1

    def test_effect_counter_resets_between_runs(self):
        eng = self.make_engine()

        def prog(ctx):
            yield Compute(1.0)

        s1 = eng.run(prog)
        s2 = eng.run(prog)
        assert s1.effects_processed == s2.effects_processed > 0


class TestBudgetError:
    def test_budget_raises_distinct_error_type(self):
        eng = Engine(1, MachineModel(), max_effects=10)

        def prog(ctx):
            while True:
                yield Compute(1.0)

        with pytest.raises(BudgetExhaustedError, match="resource limit"):
            eng.run(prog)

    def test_budget_error_still_catchable_as_deadlock(self):
        # Compatibility: callers that caught DeadlockError keep working.
        assert issubclass(BudgetExhaustedError, DeadlockError)


class TestTraceAndLogs:
    def test_logs_collected(self):
        eng = Engine(2)

        def prog(ctx):
            yield Log(f"hello from {ctx.pid}")

        stats = eng.run(prog)
        assert sorted(text for _, _, text in stats.logs) == [
            "hello from 0", "hello from 1",
        ]

    def test_trace_events(self):
        eng = Engine(1, trace=True)

        def prog(ctx):
            yield Compute(1.0, what="work")

        stats = eng.run(prog)
        kinds = [e.kind for e in stats.trace]
        assert "compute" in kinds and "done" in kinds

    def test_summary_renders(self):
        eng = Engine(2)

        def prog(ctx):
            yield Compute(1.0)

        text = eng.run(prog).summary()
        assert "makespan" in text and "P2" in text
