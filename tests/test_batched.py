"""Batched columnar core: scheduling regressions and delivery-order laws.

Two bug classes this file pins:

* **Stale run-queue keys.**  Both scheduling loops leave invalidated
  ``(clock, pid)`` heap entries behind and discard them lazily on pop
  (``nqueued`` tracking).  A bug there double-steps or skips a processor,
  which changes the number of effects the engine processes — so the
  workqueue@8 effect count is pinned exactly, for both engine modes.

* **Completion delivery order.**  ``_apply_due_completions`` pops due
  completions straight off the heap until the head lies in the future;
  correctness requires every application to happen in global
  ``(time, seq)`` order regardless of arrival interleaving.  A property
  test drives randomized send/compute interleavings through both engine
  modes and checks FIFO-by-initiation delivery and cross-mode equality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sections import section
from repro.distributions import Block, Distribution, ProcessorGrid, Segmentation
from repro.machine.effects import Compute, RecvInit, Send, WaitAccessible
from repro.machine.engine import Engine
from repro.machine.message import TransferKind
from repro.machine.model import MachineModel
from repro.apps.workqueue import make_job_costs, run_workqueue

MODEL = MachineModel(o_send=1.0, o_recv=1.0, alpha=10.0, per_byte=0.0)

#: Pinned discrete-event "work" of the bench-config workqueue at P=8
#: (128 jobs, cost seed 7).  Any stale-runq mishandling (double-stepping
#: a processor whose heap key went stale, or dropping its only live
#: entry) changes this count before it changes the makespan.
WORKQUEUE8_EFFECTS = 541
WORKQUEUE8_MAKESPAN = 13118.988033086574
WORKQUEUE8_MESSAGES = 135


def _mode_engine(mode):
    def factory(nprocs, model=None, **kw):
        kw.setdefault("engine", mode)
        return Engine(nprocs, model, **kw)
    return factory


class TestRunqInvalidation:
    @pytest.mark.msg_timing
    def test_workqueue8_effect_count_pinned(self):
        costs = make_job_costs(128, skew=4.0, seed=7)
        for mode in ("scalar", "batched"):
            r = run_workqueue(
                128, 8, scheme="dynamic", costs=costs, model=MODEL,
                engine_cls=_mode_engine(mode),
            )
            assert r.stats.effects_processed == WORKQUEUE8_EFFECTS, mode
            assert r.makespan == WORKQUEUE8_MAKESPAN, mode
            assert r.stats.total_messages == WORKQUEUE8_MESSAGES, mode

    def test_rerun_same_engine_same_counts(self):
        """A second run on the same instance replays the same schedule —
        leftover stale keys from run one must not leak into run two."""
        costs = make_job_costs(64, skew=4.0, seed=7)
        eng_cls = _mode_engine("batched")

        def one(engine_cls):
            return run_workqueue(
                64, 8, scheme="dynamic", costs=costs, model=MODEL,
                engine_cls=engine_cls,
            ).stats

        first = one(eng_cls)
        second = one(eng_cls)
        assert first.effects_processed == second.effects_processed
        assert first.makespan == second.makespan


def _linear_seg(extent, nprocs):
    dist = Distribution(
        section((1, extent)), (Block(),), ProcessorGrid((nprocs,))
    )
    return Segmentation(dist, (1,))


def _delivery_run(mode, send_gaps, recv_gaps):
    """Sender ships values 1..N with compute gaps; receiver posts all
    receives up front, then awaits slots in order after its own gaps."""
    n = len(send_gaps)
    eng = Engine(2, MODEL, engine=mode)
    eng.declare("X", _linear_seg(2 * (n + 1), 2))

    def prog(ctx):
        if ctx.pid == 0:
            for i, gap in enumerate(send_gaps):
                if gap:
                    yield Compute(gap)
                ctx.symtab.write("X", section(1), float(i + 1))
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
        else:
            base = n + 2  # receiver-owned half of the index space
            for i in range(n):
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(base + i),
                )
            for i, gap in enumerate(recv_gaps):
                if gap:
                    yield Compute(gap)
                yield WaitAccessible("X", section(base + i))

    stats = eng.run(prog)
    base = n + 2
    slots = np.array(
        [eng.symtabs[1].read("X", section(base + i))[0] for i in range(n)]
    )
    return stats, slots


class TestCompletionDeliveryOrder:
    @settings(max_examples=30, deadline=None)
    @given(
        gaps=st.lists(
            st.tuples(
                st.floats(0.0, 40.0, allow_nan=False, width=32),
                st.floats(0.0, 40.0, allow_nan=False, width=32),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_fifo_by_initiation_both_modes(self, gaps):
        """Whatever the timing interleaving, same-tag completions apply
        in (time, seq) order, so slots fill FIFO-by-initiation — and the
        batched core agrees with the scalar oracle bit for bit."""
        send_gaps = [g[0] for g in gaps]
        recv_gaps = [g[1] for g in gaps]
        runs = {
            mode: _delivery_run(mode, send_gaps, recv_gaps)
            for mode in ("scalar", "batched")
        }
        for mode, (_stats, slots) in runs.items():
            assert slots.tolist() == [float(i + 1) for i in range(len(gaps))], mode
        sc, ba = runs["scalar"], runs["batched"]
        assert sc[0].makespan == ba[0].makespan
        assert sc[0].effects_processed == ba[0].effects_processed
        assert sc[1].tobytes() == ba[1].tobytes()


class TestMiddlewareDiversion:
    """A middleware-wrapped transport must divert to the scalar oracle.

    Regression: ``_use_batched_core`` used to check only the ``faults=``/
    ``reliable=`` constructor arguments, so a hand-stacked stack
    (``transport=ReliableDelivery(FaultInjection(...))`` — the contract
    tests' idiom) silently ran the columnar core *underneath* the
    middleware, bypassing its semantics.
    """

    @staticmethod
    def _stacked_transport():
        from repro.machine.faults import FaultModel
        from repro.machine.reliable import ReliableTransport
        from repro.machine.transport import make_transport
        from repro.machine.transport.middleware import (
            FaultInjection,
            ReliableDelivery,
        )

        return ReliableDelivery(
            FaultInjection(make_transport("msg"), FaultModel.none()),
            ReliableTransport(),
        )

    def test_hand_stacked_middleware_disables_batched_core(self):
        eng = Engine(4, transport=self._stacked_transport(), engine="batched")
        assert not eng._use_batched_core()
        # Sanity: the same engine without middleware does engage it.
        assert Engine(4, engine="batched")._use_batched_core()

    def test_single_middleware_layer_also_diverts(self):
        from repro.machine.faults import FaultModel
        from repro.machine.transport import make_transport
        from repro.machine.transport.middleware import FaultInjection

        t = FaultInjection(make_transport("msg"), FaultModel.none())
        assert not Engine(4, transport=t, engine="batched")._use_batched_core()

    def test_stacked_run_matches_scalar_bit_for_bit(self):
        # A lossless FaultInjection layer is semantically transparent, so
        # a correct batched-mode engine (which must divert to the scalar
        # loop under middleware) agrees with scalar mode exactly.
        from repro.machine.faults import FaultModel
        from repro.machine.transport import make_transport
        from repro.machine.transport.middleware import FaultInjection

        costs = make_job_costs(8, skew=2.0, seed=7)
        results = {}
        for mode in ("scalar", "batched"):
            def factory(nprocs, model=None, **kw):
                kw.setdefault("engine", mode)
                kw.setdefault("transport", FaultInjection(
                    make_transport("msg"), FaultModel.none()
                ))
                return Engine(nprocs, model, **kw)

            r = run_workqueue(8, 4, scheme="dynamic", costs=costs,
                              model=MODEL, engine_cls=factory)
            results[mode] = r
        sc, ba = results["scalar"], results["batched"]
        assert sc.makespan == ba.makespan
        assert sc.stats.effects_processed == ba.stats.effects_processed
        assert sc.jobs_per_worker == ba.jobs_per_worker


class TestChaosModeEquivalence:
    """Same-seed chaos replays are bit-identical in both engine modes:
    every fault path diverts to the scalar oracle, and the fault-free
    reference runs are cross-mode bit-identical by the columnar core's
    own contract — so the *entire* chaos report must agree."""

    def test_chaos_report_identical_across_engine_modes(self, monkeypatch):
        from repro.apps.chaos import run_chaos

        kw = dict(
            programs=("workqueue",), nprocs_list=(4,),
            seed=7, jobs_per_proc=3,
        )
        reports = {}
        for mode in ("scalar", "batched"):
            monkeypatch.setenv("REPRO_ENGINE_MODE", mode)
            reports[mode] = run_chaos(**kw)
        assert reports["scalar"] == reports["batched"]
        assert reports["scalar"]["ok"]
