"""Smoke tests: every example script runs to completion and prints its
expected headline output (protects examples/ from bitrot)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    try:
        spec.loader.exec_module(mod)
        mod.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


@pytest.mark.parametrize("name,needle", [
    ("quickstart", "optimized (aligned)"),
    ("load_balancing", "dynamic pool vs static schedule"),
    ("debugger_monitor", "followed the schedule exactly"),
    ("redistribution", "3-D FFT result correct: True"),
    ("overlap_polling", "accessible()-polling"),
    ("memory_hierarchy", "double-buffer"),
])
def test_example_runs(name, needle, capsys):
    out = run_example(name, capsys)
    assert needle in out


@pytest.mark.slow
def test_fft3d_example(capsys):
    out = run_example("fft3d", capsys)
    assert "stage 2" in out
    assert "True" in out and "False" not in out
