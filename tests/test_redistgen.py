"""Tests for compiler-generated redistribution code (paper section 4's
linked -=>/<=- structure)."""

import numpy as np
import pytest

from repro.core.ir.nodes import (
    ArrayDecl, Block, Guarded, Program, RecvStmt, SendStmt, XferOp,
)
from repro.core.ir.verify import verify_program
from repro.core.interp import Interpreter
from repro.core.redistgen import redistribution_statements, section_to_subscripts
from repro.core.sections import section
from repro.distributions import (
    Block as BlockSpec,
    Cyclic,
    Distribution,
    ProcessorGrid,
    Segmentation,
    plan_redistribution,
)
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


def make_plan(n=16, nprocs=4, seg=None):
    grid = ProcessorGrid((nprocs,))
    src = Distribution(section((1, n)), (BlockSpec(),), grid)
    dst = Distribution(section((1, n)), (Cyclic(),), grid)
    segmentation = Segmentation(src, (seg,)) if seg else None
    return src, dst, plan_redistribution(src, dst, segmentation=segmentation)


def build_program(n, nprocs, stmts, seg_shape):
    decl = ArrayDecl("A", ((1, n),), dist="(BLOCK)", segment_shape=seg_shape)
    return Program((decl,), Block(tuple(stmts)))


class TestGeneration:
    def test_statement_structure(self):
        _, _, plan = make_plan()
        stmts = redistribution_statements("A", plan)
        assert len(stmts) == 2 * plan.message_count
        sends = stmts[: plan.message_count]
        recvs = stmts[plan.message_count:]
        for s in sends:
            assert isinstance(s, Guarded)
            inner = s.body.stmts[0]
            assert isinstance(inner, SendStmt)
            assert inner.op is XferOp.SEND_OWNER_VALUE
            assert inner.dests is not None
        for r in recvs:
            assert isinstance(r.body.stmts[0], RecvStmt)

    def test_ownership_only_mode(self):
        _, _, plan = make_plan()
        stmts = redistribution_statements("A", plan, with_value=False)
        assert stmts[0].body.stmts[0].op is XferOp.SEND_OWNER

    def test_awaits_appended(self):
        _, _, plan = make_plan()
        stmts = redistribution_statements("A", plan, awaits=True)
        assert len(stmts) == 3 * plan.message_count

    def test_section_to_subscripts_roundtrip(self):
        from repro.core.ir.printer import print_ref
        from repro.core.ir.nodes import ArrayRef

        sec = section((1, 7, 2), 3, (4, 4))
        ref = ArrayRef("A", section_to_subscripts(sec))
        assert print_ref(ref) == "A[1:7:2,3,4]"


class TestExecution:
    @pytest.mark.parametrize("with_value", [True, False])
    def test_redistribution_runs(self, with_value):
        n, nprocs = 16, 4
        src, dst, plan = make_plan(n, nprocs)
        stmts = redistribution_statements("A", plan, with_value=with_value,
                                          awaits=True)
        prog = build_program(n, nprocs, stmts, (1,))
        verify_program(prog)
        it = Interpreter(prog, nprocs, model=FAST)
        a0 = np.arange(1.0, n + 1)
        it.write_global("A", a0)
        stats = it.run()
        assert stats.unclaimed_messages == 0
        # Ownership now matches the CYCLIC target everywhere.
        for pid in range(nprocs):
            for sec in dst.owned_sections(pid):
                assert it.engine.symtabs[pid].iown("A", sec)
        if with_value:
            assert np.array_equal(it.read_global("A"), a0)

    def test_segment_granularity_execution(self):
        n, nprocs = 16, 4
        src, dst, plan = make_plan(n, nprocs, seg=2)
        stmts = redistribution_statements("A", plan, awaits=True)
        prog = build_program(n, nprocs, stmts, (2,))
        it = Interpreter(prog, nprocs, model=FAST)
        a0 = np.arange(1.0, n + 1)
        it.write_global("A", a0)
        it.run()
        assert np.array_equal(it.read_global("A"), a0)

    def test_empty_plan_is_empty_code(self):
        grid = ProcessorGrid((2,))
        d = Distribution(section((1, 8)), (BlockSpec(),), grid)
        plan = plan_redistribution(d, d)
        assert redistribution_statements("A", plan) == []


class TestSelfAndDuplicateMoves:
    """Regression (ISSUE 8): plans that carry ``src == dst`` or repeated
    moves — e.g. hand-assembled round plans from the bounded-redistribution
    planner — must not emit self-sends (a processor messaging itself
    deadlocks) or duplicate transfer pairs."""

    def test_self_moves_emit_no_statements(self):
        from repro.distributions.redistribute import Move, RedistributionPlan

        src, dst, _ = make_plan()
        moves = (
            Move(0, 0, section((1, 4))),    # layouts share P1's block
            Move(0, 1, section((5, 8))),
            Move(1, 1, section((5, 8))),    # and P2 keeps part of its own
        )
        plan = RedistributionPlan(src, dst, moves)
        stmts = redistribution_statements("A", plan)
        assert len(stmts) == 2  # one send + one recv for the single cross move

    def test_duplicate_moves_deduplicated(self):
        from repro.distributions.redistribute import Move, RedistributionPlan

        src, dst, _ = make_plan()
        m = Move(0, 1, section((1, 4)))
        plan = RedistributionPlan(src, dst, (m, m, Move(2, 3, section((9, 12)))))
        stmts = redistribution_statements("A", plan)
        assert len(stmts) == 4  # two distinct transfers, not three

    def test_block_to_cyclic_message_count(self):
        """BLOCK→CYCLIC at n=16, P=4: each processor keeps one element of
        its block, so exactly 12 of the 16 element moves are messages —
        and the engine must count exactly those."""
        n, nprocs = 16, 4
        src, dst, plan = make_plan(n, nprocs)
        assert plan.message_count == 12
        stmts = redistribution_statements("A", plan, awaits=True)
        sends = [s for s in stmts if isinstance(s.body.stmts[0], SendStmt)]
        assert len(sends) == 12
        prog = build_program(n, nprocs, stmts, (1,))
        it = Interpreter(prog, nprocs, model=FAST)
        a0 = np.arange(1.0, n + 1)
        it.write_global("A", a0)
        stats = it.run()
        assert stats.total_messages == 12
        assert np.array_equal(it.read_global("A"), a0)
