"""Service-layer chaos battery (`repro serve --chaos`).

The battery SIGKILLs workers mid-job, stalls attempts past their
timeout, truncates/bit-flips published cache records, floods the
bounded queue, and feeds a poison job — asserting the service contract
holds under all of it: jobs complete/retry/degrade/fail cleanly, the
cache never serves a corrupt artifact, and a fixed seed reproduces the
whole run bit-identically.  The battery runs once per module (it is a
real multi-process exercise); the tests pick its report apart.
"""

import pytest

from repro.serve import format_serve_chaos, run_serve_chaos
from repro.serve.chaos import CHAOS_CONFIG


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-chaos")
    return run_serve_chaos(seed=7, nprocs=4, store_root=str(root))


def section(report, name):
    return next(s for s in report["sections"] if s["section"] == name)


class TestServeChaosBattery:
    def test_full_battery_passes(self, report):
        assert report["ok"], report
        names = [s["section"] for s in report["sections"]]
        assert names == [
            "worker-kill", "stall", "cache-corruption", "overload", "poison"
        ]
        assert all(s["ok"] for s in report["sections"])

    def test_same_seed_rerun_is_bit_identical(self, report):
        assert report["determinism"]["section"] == "worker-kill"
        assert report["determinism"]["ok"]

    def test_kill_section_restarts_and_retries(self, report):
        kill = section(report, "worker-kill")
        assert kill["killed_jobs"]
        assert kill["retries"] >= len(kill["killed_jobs"])
        assert kill["workers_restarted"] >= len(kill["killed_jobs"])

    def test_corruption_section_quarantines_everything_it_corrupts(
        self, report
    ):
        corr = section(report, "cache-corruption")
        assert corr["corrupted"] > 0
        assert corr["quarantined"] == corr["corrupted"]

    def test_stall_section_degrades_tune_within_budget(self, report):
        stall = section(report, "stall")
        assert stall["run_status"] == "ok"
        assert stall["tune_status"] == "degraded"

    def test_overload_section_sheds_exactly_the_excess(self, report):
        over = section(report, "overload")
        assert over["shed"] == over["submitted"] - over["completed"]
        assert over["shed"] > 0

    def test_poison_section_quarantines_after_budget(self, report):
        poison = section(report, "poison")
        assert poison["status"] == "poison"
        assert poison["attempts"] == CHAOS_CONFIG["max_attempts"]

    def test_format_renders(self, report):
        text = format_serve_chaos(report)
        assert "serve chaos: OK" in text
        assert "worker-kill" in text and "cache-corruption" in text
        assert "bit-identical" in text

    def test_different_seed_still_passes(self, tmp_path):
        rep = run_serve_chaos(seed=11, nprocs=4, store_root=str(tmp_path),
                              check_determinism=False)
        assert rep["ok"]
