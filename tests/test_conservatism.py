"""Conservatism and determinism guarantees.

Optimization passes must *skip* (not break) whatever they cannot prove;
the engine must be bit-deterministic run to run.
"""

import numpy as np

from repro.core.interp import Interpreter
from repro.core.ir.parser import parse_program
from repro.core.opt import (
    AwaitSinking, ComputeRuleElimination, GuardHoisting, LoopFusion,
    MessageVectorization, PassManager, TransferElimination,
)
from repro.core.translate import translate
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


def reports_of(src, passes, nprocs=4, translate_first=False):
    prog = parse_program(src)
    if translate_first:
        prog = translate(prog, nprocs)
    return PassManager(passes).run(prog, nprocs).reports


class TestPassConservatism:
    def test_cre_handles_mypid_in_collapsed_subscript(self):
        # The dynamic enumeration pins mypid per processor, so even a
        # guard mixing the loop variable with mypid is analyzable.
        src = """
array A[1:4,1:4] dist (BLOCK, *) seg (1,4)

do i = 1, 4
  iown(A[i,mypid]) : { A[i,mypid] = 1 }
enddo
"""
        reps = reports_of(src, [ComputeRuleElimination()])
        assert any("replaced i by mypid" in r for r in reps)

    def test_cre_skips_loop_var_in_two_subscripts(self):
        src = """
array A[1:4,1:4] dist (BLOCK, *) seg (1,4)

do i = 1, 4
  iown(A[i,i]) : { A[i,i] = 1 }
enddo
"""
        reps = reports_of(src, [ComputeRuleElimination()])
        assert any("no opportunities" in r for r in reps)

    def test_cre_skips_multi_statement_body(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (BLOCK) seg (1)

do i = 1, 8
  iown(A[i]) : { A[i] = 1 }
  iown(B[i]) : { B[i] = 2 }
enddo
"""
        reps = reports_of(src, [ComputeRuleElimination()])
        assert any("no opportunities" in r for r in reps)

    def test_vectorize_skips_multidim(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)
array B[1:4,1:4] dist (*, CYCLIC) seg (4,1)

do i = 1, 4
  A[1,i] = A[1,i] + B[1,i]
enddo
"""
        reps = reports_of(src, [MessageVectorization()], translate_first=True)
        assert any("no opportunities" in r for r in reps)

    def test_fusion_skips_different_trip_counts(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)

do i = 1, 8
  iown(A[i]) : { A[i] = 1 }
enddo
do j = 1, 7
  iown(A[j]) : { A[j] = 2 }
enddo
"""
        reps = reports_of(src, [LoopFusion()])
        assert any("no opportunities" in r for r in reps)

    def test_fusion_skips_capture_hazard(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)
array B[1:4,1:4] dist (*, BLOCK) seg (4,1)

do i = 1, 4
  iown(A[i]) : { A[i] = 1 }
enddo
do i2 = 1, 4
  iown(B[i2,i]) : { B[i2,i] = 2 }
enddo
"""
        # Second loop's body uses outer name 'i' freely; renaming i2 -> i
        # would capture it.  (Program itself is odd but legal with i=… set.)
        src = "scalar i = 1\n" + src
        reps = reports_of(src, [LoopFusion()])
        assert any("no opportunities" in r for r in reps)

    def test_await_sinking_skips_await_of_other_array(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)
array B[1:4,1:4] dist (*, BLOCK) seg (4,1)

await(A[*,mypid]) : {
  do i = 1, 4
    B[i,mypid] = 1
  enddo
}
"""
        reps = reports_of(src, [AwaitSinking()])
        assert any("no opportunities" in r for r in reps)

    def test_guard_hoisting_skips_symbolic_bounds(self):
        src = """
array A[1:4,1:4] dist (*, BLOCK) seg (4,1)
scalar m

do i = 1, m
  iown(A[i,mypid]) : { A[i,mypid] = 1 }
enddo
"""
        reps = reports_of(src, [GuardHoisting()])
        assert any("no opportunities" in r for r in reps)

    def test_transfer_elim_skips_dirty_arrays(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (BLOCK) seg (1)

B[1] =>
do i = 2, 8
  iown(B[i]) : { B[i] -> }
  iown(A[i]) : {
    A[i] <- B[i]
    await(A[i])
    A[i] = A[i] + 1
  }
enddo
"""
        # B's ownership moved before the loop: initial-distribution
        # reasoning is invalid, so the pair must stay.
        reps = reports_of(src, [TransferElimination()])
        assert all("removed transfer" not in r for r in reps)


class TestDeterminism:
    SRC = """
array A[1:16] dist (BLOCK) seg (1)
array B[1:16] dist (CYCLIC) seg (1)

do i = 1, 16
  A[i] = A[i] + B[i]
enddo
"""

    def _run_once(self):
        prog = translate(parse_program(self.SRC), 4)
        it = Interpreter(prog, 4, model=FAST, trace=True)
        it.write_global("A", np.arange(16.0))
        it.write_global("B", np.ones(16))
        stats = it.run()
        return stats, it.read_global("A")

    def test_repeated_runs_identical(self):
        (s1, a1) = self._run_once()
        (s2, a2) = self._run_once()
        assert np.array_equal(a1, a2)
        assert s1.makespan == s2.makespan
        assert [str(e) for e in s1.trace] == [str(e) for e in s2.trace]
