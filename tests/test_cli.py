"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main

SIMPLE = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
scalar n = 8

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""


@pytest.fixture
def program_file(tmp_path):
    p = tmp_path / "simple.xdp"
    p.write_text(SIMPLE)
    return str(p)


class TestCompile:
    def test_compile_prints_program_and_report(self, program_file, capsys):
        assert main(["compile", program_file, "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "translated (owner-computes)" in out
        # At -O2 the guards are gone: vectorized pair messages + localized loop.
        assert "mylb(" in out and "message-vectorization" in out
        assert "optimization report" in out

    def test_compile_O0_keeps_paper_shape(self, program_file, capsys):
        assert main(["compile", program_file, "-O", "0"]) == 0
        out = capsys.readouterr().out
        assert "iown(" in out and "await(" in out

    def test_compile_migrate(self, program_file, capsys):
        assert main(["compile", program_file, "--strategy", "migrate"]) == 0
        out = capsys.readouterr().out
        assert "-=>" in out and "<=-" in out

    def test_compile_no_binding(self, program_file, capsys):
        assert main(["compile", program_file, "--no-binding", "-O", "0"]) == 0
        out = capsys.readouterr().out
        assert "-> {" not in out

    def test_compile_already_spmd(self, tmp_path, capsys):
        p = tmp_path / "spmd.xdp"
        p.write_text(
            "array A[1:4] dist (BLOCK) seg (1)\n\n"
            "iown(A[mypid]) : { A[mypid] = 1 }\n"
        )
        assert main(["compile", str(p)]) == 0
        assert "translated" not in capsys.readouterr().out


class TestRun:
    def test_run_shows_summary_and_array(self, program_file, capsys):
        rc = main([
            "run", program_file, "--nprocs", "4",
            "--init", "A=iota", "--init", "B=ones", "--show", "A",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "A =" in out
        assert "2." in out  # 1+1

    def test_run_interp_path(self, program_file, capsys):
        assert main(["run", program_file, "--path", "interp"]) == 0

    def test_run_blocking_binding(self, program_file, capsys):
        assert main(["run", program_file, "--binding", "blocking"]) == 0

    def test_run_trace(self, program_file, capsys):
        assert main(["run", program_file, "--trace", "-O", "0"]) == 0
        out = capsys.readouterr().out
        assert "send" in out

    def test_bad_init_kind(self, program_file):
        with pytest.raises(SystemExit):
            main(["run", program_file, "--init", "A=bogus"])


class TestFigures:
    @pytest.mark.parametrize("which,marker", [
        ("1", "rules governing execution"),
        ("2", "symbol table"),
        ("3", "Figure 3"),
        ("4", "Figure 4"),
    ])
    def test_single_figure(self, which, marker, capsys):
        assert main(["figures", which]) == 0
        assert marker in capsys.readouterr().out

    def test_all(self, capsys):
        assert main(["figures", "all"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 4" in out


class TestFFT:
    def test_fft_runs(self, capsys):
        assert main(["fft", "--n", "4", "--nprocs", "4", "--stage", "1"]) == 0
        out = capsys.readouterr().out
        assert "correct=True" in out

    def test_fft_print_source(self, capsys):
        assert main(["fft", "--print-source", "--stage", "0"]) == 0
        out = capsys.readouterr().out
        assert "Loop3: redistribute" in out


class TestBench:
    @pytest.mark.msg_timing
    def test_bench_writes_json(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "bench.json"
        assert main([
            "bench", "--nprocs", "2,4", "--programs", "workqueue",
            "--jobs-per-proc", "2", "--out", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup vs seed engine" in out
        data = json.loads(out_file.read_text())
        assert data["schema"] == 2
        engines = {c["engine"] for c in data["cases"]}
        assert engines == {"indexed", "batched", "seed-reference"}
        assert "workqueue@2" in data["speedups"]
        assert "workqueue@2" in data["batched_speedups"]
        assert {e["engine"] for e in data["classifier"]} == {"indexed", "batched"}
        assert "batched core vs scalar mode" in out
        assert "bottleneck workqueue@4" in out

    def test_bench_diff_mode(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        assert main([
            "bench", "--nprocs", "2", "--programs", "workqueue",
            "--jobs-per-proc", "2", "--no-seed-reference",
            "--out", str(out_file),
        ]) == 0
        capsys.readouterr()
        assert main([
            "bench", "--nprocs", "2", "--programs", "workqueue",
            "--jobs-per-proc", "2", "--no-seed-reference",
            "--diff", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert f"vs {out_file}" in out
        assert "old eff/s" in out and "x" in out

    @pytest.mark.msg_timing
    def test_bench_fft_program(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        assert main([
            "bench", "--nprocs", "4", "--programs", "fft",
            "--out", str(out_file),
        ]) == 0
        assert "fft" in capsys.readouterr().out


class TestMatmulApp:
    @staticmethod
    def _digest(out: str) -> str:
        for line in out.splitlines():
            if line.startswith("result sha256:"):
                return line.split(":", 1)[1].strip()
        raise AssertionError(f"no digest line in output:\n{out}")

    def test_run_matmul_prints_summary_and_digest(self, capsys):
        assert main(["run", "--app", "matmul", "--variant", "cannon",
                     "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "matmul/cannon" in out and "correct=True" in out
        assert len(self._digest(out)) == 64

    def test_run_matmul_digest_invariant_across_backend_and_lowering(
            self, capsys):
        digests = set()
        for extra in (["--backend", "msg"],
                      ["--backend", "shmem"],
                      ["--backend", "msg", "--collectives", "p2p"]):
            assert main(["run", "--app", "matmul", "--nprocs", "4",
                         *extra]) == 0
            digests.add(self._digest(capsys.readouterr().out))
        assert len(digests) == 1, digests

    @pytest.mark.parametrize("backend", ["msg", "shmem"])
    def test_check_matmul_all_variants_clean(self, backend, capsys):
        assert main(["check", "matmul", "--nprocs", "4",
                     "--backend", backend]) == 0
        out = capsys.readouterr().out
        for variant in ("cannon", "summa", "gather", "outer"):
            assert f"matmul/{variant}" in out


class TestRedist:
    def test_redist_reports_bounded_schedule(self, capsys):
        assert main(["redist", "--max-temp-frac", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "(*, *, BLOCK) -> (*, BLOCK, *)" in out
        assert "3 rounds" in out
        assert "peak/naive  0.333" in out

    def test_redist_json_summary(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "redist.json"
        assert main(["redist", "--max-temp-frac", "0.25",
                     "--json", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data["rounds"] == 3
        assert data["peak_temp_bytes"] <= data["budget_bytes"]
        assert data["peak_temp_bytes"] / data["naive_peak_bytes"] <= 0.5

    def test_redist_rejects_bad_frac(self, capsys):
        from repro.core.errors import DistributionError

        with pytest.raises(DistributionError):
            main(["redist", "--max-temp-frac", "0"])


class TestServe:
    def test_serve_session_then_warm_replay(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["serve", "--store", store, "--rounds", "1",
                     "--nprocs", "3"]) == 0
        out = capsys.readouterr().out
        assert "serve: OK" in out
        # Same store, fresh session: everything cached, hit-rate bar met.
        assert main(["serve", "--store", store, "--rounds", "1",
                     "--nprocs", "3", "--min-hit-rate", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "hit rate 100.0%" in out

    def test_serve_min_hit_rate_fails_cold(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["serve", "--store", store, "--rounds", "1",
                     "--nprocs", "3", "--min-hit-rate", "0.9"]) == 1
        assert "below required" in capsys.readouterr().out

    def test_serve_requires_store(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serve_json_report(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        out_file = tmp_path / "serve.json"
        assert main(["serve", "--store", store, "--rounds", "1",
                     "--nprocs", "3", "--json", str(out_file)]) == 0
        import json

        report = json.loads(out_file.read_text())
        assert report["ok"]
        assert report["summary"]["jobs"] == 6
