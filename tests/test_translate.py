"""Unit tests for the sequential → IL+XDP translator (paper section 2.2)."""

import numpy as np
import pytest

from repro.core.errors import CompilationError
from repro.core.interp import Interpreter
from repro.core.ir.nodes import (
    Assign, DoLoop, ExprStmt, Guarded, Iown, RecvStmt, SendStmt, XferOp,
)
from repro.core.ir.parser import parse_program
from repro.core.ir.verify import verify_program
from repro.core.translate import translate
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)

SEQ = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
scalar n = 8

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""


def run_and_check(program, nprocs=4):
    it = Interpreter(program, nprocs, model=FAST)
    it.write_global("A", np.arange(1, 9.0))
    it.write_global("B", 10 * np.arange(1, 9.0))
    stats = it.run()
    assert np.array_equal(it.read_global("A"), 11 * np.arange(1, 9.0))
    return it, stats


class TestOwnerComputes:
    def test_shape_matches_paper(self):
        """The output is exactly the section-2.2 naive translation (with
        destination binding disabled, as in the paper's listing)."""
        out = translate(parse_program(SEQ), 4, bind_destinations=False)
        (loop,) = out.body
        assert isinstance(loop, DoLoop)
        send, recv = loop.body.stmts
        # iown(B[i]) : { B[i] -> }
        assert isinstance(send, Guarded) and isinstance(send.rule, Iown)
        assert isinstance(send.body.stmts[0], SendStmt)
        assert send.body.stmts[0].op is XferOp.SEND_VALUE
        assert send.body.stmts[0].dests is None
        # iown(A[i]) : { T <- B[i]; await(T); A[i] = A[i] + T }
        assert isinstance(recv, Guarded)
        r0, r1, r2 = recv.body.stmts
        assert isinstance(r0, RecvStmt) and r0.op is XferOp.RECV_VALUE
        assert isinstance(r1, ExprStmt)
        assert isinstance(r2, Assign)

    def test_destination_binding_default(self):
        """By default sends carry the inline owner arithmetic of the
        receiving side (paper section 3.2's annotation)."""
        out = translate(parse_program(SEQ), 4)
        (loop,) = out.body
        send = loop.body.stmts[0].body.stmts[0]
        assert isinstance(send, SendStmt)
        assert send.dests is not None and len(send.dests) == 1
        # A is BLOCK over 4 procs with 8 elements: owner = (i-1)/2 + 1.
        from repro.core.ir.printer import print_expr

        assert print_expr(send.dests[0]) == "(i - 1) / 2 + 1"

    def test_binding_correct_across_repeated_sweeps(self):
        """Destination binding makes repeated name reuse across outer
        sweeps well-defined (per-destination FIFO pairing)."""
        src = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)

do t = 1, 3
  do i = 1, 8
    A[i] = A[i] + B[i]
  enddo
  do i = 1, 8
    B[i] = B[i] * 2
  enddo
enddo
"""
        out = translate(parse_program(src), 4)
        it = Interpreter(out, 4, model=FAST)
        a = np.arange(8.0)
        b = np.ones(8)
        it.write_global("A", a.copy())
        it.write_global("B", b.copy())
        it.run()
        want_a, want_b = a.copy(), b.copy()
        for _ in range(3):
            want_a += want_b
            want_b *= 2
        assert np.array_equal(it.read_global("A"), want_a)
        assert np.array_equal(it.read_global("B"), want_b)

    def test_temp_declared(self):
        out = translate(parse_program(SEQ), 4)
        temp = out.decl("_T1")
        assert temp.bounds == ((1, 4),)
        assert temp.dist == "(BLOCK)"

    def test_verifies_and_runs(self):
        out = translate(parse_program(SEQ), 4)
        verify_program(out)
        _, stats = run_and_check(out)
        assert stats.total_messages == 8
        assert stats.unclaimed_messages == 0

    def test_local_statement_only_guarded(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)

do i = 1, 8
  A[i] = A[i] * 2
enddo
"""
        out = translate(parse_program(src), 4)
        (loop,) = out.body
        (g,) = loop.body.stmts
        assert isinstance(g, Guarded)
        assert isinstance(g.body.stmts[0], Assign)
        # No transfers inserted.
        assert not any(isinstance(s, (SendStmt, RecvStmt)) for s in g.body)

    def test_multiple_rhs_refs(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
array C[1:8] dist (CYCLIC) seg (1)

do i = 1, 8
  A[i] = B[i] + C[i]
enddo
"""
        out = translate(parse_program(src), 4)
        verify_program(out)
        names = [d.name for d in out.decls]
        assert "_T1" in names and "_T2" in names
        it = Interpreter(out, 4, model=FAST)
        it.write_global("A", np.zeros(8))
        it.write_global("B", np.arange(8.0))
        it.write_global("C", np.arange(8.0))
        stats = it.run()
        assert np.array_equal(it.read_global("A"), 2 * np.arange(8.0))
        assert stats.total_messages == 16

    def test_call_guarded(self):
        src = """
array F[1:8] dist (BLOCK) seg (4) dtype complex128

do k = 1, 2
  call fft1D(F[4*k-3:4*k])
enddo
"""
        out = translate(parse_program(src), 2)
        (loop,) = out.body
        (g,) = loop.body.stmts
        assert isinstance(g, Guarded) and isinstance(g.rule, Iown)

    def test_rejects_non_sequential(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)

A[1] ->
"""
        with pytest.raises(CompilationError, match="sequential"):
            translate(parse_program(src), 2)

    def test_rejects_exclusive_loop_bound(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)

do i = 1, A[1]
enddo
"""
        with pytest.raises(CompilationError, match="loop bound"):
            translate(parse_program(src), 2)

    def test_rejects_exclusive_scalar_rhs(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)
scalar x

x = A[1]
"""
        with pytest.raises(CompilationError, match="scalar assignment"):
            translate(parse_program(src), 2)

    def test_rejects_section_rhs(self):
        src = """
array A[1:4] dist (BLOCK) seg (1)
array B[1:4] dist (CYCLIC) seg (1)

A[1:4] = B[1:4]
"""
        with pytest.raises(CompilationError, match="section read"):
            translate(parse_program(src), 2)


class TestMigrate:
    def test_shape_matches_paper(self):
        out = translate(parse_program(SEQ), 4, strategy="migrate", literal_migrate=True)
        (loop,) = out.body
        s0, s1, s2 = loop.body.stmts
        assert isinstance(s0, Guarded) and isinstance(s0.body.stmts[0], SendStmt)
        assert s0.body.stmts[0].op is XferOp.SEND_OWNER_VALUE
        assert isinstance(s1, Guarded) and isinstance(s1.body.stmts[0], RecvStmt)
        assert s1.body.stmts[0].op is XferOp.RECV_OWNER_VALUE
        assert isinstance(s2, Guarded)  # await(A[i]) : { A[i] = A[i] + B[i] }

    def test_literal_runs_correctly(self):
        out = translate(parse_program(SEQ), 4, strategy="migrate", literal_migrate=True)
        it, stats = run_and_check(out)
        # Literal form self-transfers aligned elements too: 8 moves total.
        assert stats.total_messages == 8

    def test_guarded_skips_aligned_elements(self):
        out = translate(parse_program(SEQ), 4, strategy="migrate")
        it, stats = run_and_check(out)
        # BLOCK vs CYCLIC over 4 procs: A[1] and A[6] already co-located.
        assert stats.total_messages == 6

    def test_ownership_ends_at_rhs_owner(self):
        out = translate(parse_program(SEQ), 4, strategy="migrate")
        it, _ = run_and_check(out)
        cyclic = it.segmentations["B"].distribution
        for pid in range(4):
            for sec in cyclic.owned_sections(pid):
                assert it.engine.symtabs[pid].iown("A", sec)

    def test_migrate_falls_back_with_two_refs(self):
        src = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
array C[1:8] dist (CYCLIC) seg (1)

do i = 1, 8
  A[i] = B[i] + C[i]
enddo
"""
        out = translate(parse_program(src), 4, strategy="migrate")
        # Two RHS refs: falls back to owner-computes messaging.
        assert any(d.name == "_T1" for d in out.decls)

    def test_unknown_strategy(self):
        with pytest.raises(CompilationError):
            translate(parse_program(SEQ), 4, strategy="nonsense")


class TestUniversalTarget:
    def test_broadcast(self):
        src = """
array W[1:8] universal
array B[1:8] dist (BLOCK) seg (1)

do i = 1, 8
  W[i] = B[i] * 2
enddo
"""
        out = translate(parse_program(src), 4)
        verify_program(out)
        it = Interpreter(out, 4, model=FAST)
        it.write_global("B", np.arange(8.0))
        stats = it.run()
        # Every processor's private copy holds the broadcast result: check
        # via an engine-level read of each env is not exposed, so re-run a
        # program that copies W into an exclusive array instead.
        assert stats.total_messages == 8 * 4  # one broadcast (4 dests) per element
        assert stats.unclaimed_messages == 0
