"""Crash-safe artifact store: durability contract and concurrency.

The store promises (docs/SERVE.md) that a reader sees either nothing or
a complete, verified record — never a partial or corrupt one — no matter
how writers crash or race.  This file pins each clause: atomic
publication, sha256 verification on every read, quarantine-and-miss on
corruption, strict-mode raising, and the two-process same-key write race
(satellite: concurrent artifact-store access).
"""

import json
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core.errors import ArtifactIntegrityError
from repro.serve.store import (
    ArtifactKey,
    ArtifactStore,
    decode_payload,
    encode_payload,
    il_sha256,
)

SOURCE = "array A[1:4] dist (BLOCK) seg (1)\nA[1] = 1\n"


def make_key(source=SOURCE, kind="run", nprocs=4, backend="msg", model=None):
    return ArtifactKey.make(
        source, {"kind": kind, "nprocs": nprocs}, backend, model
    )


class TestKey:
    def test_digest_stable_across_dict_order(self):
        a = ArtifactKey.make(SOURCE, {"x": 1, "y": 2}, "msg", {"m": 3})
        b = ArtifactKey.make(SOURCE, {"y": 2, "x": 1}, "msg", {"m": 3})
        assert a.digest == b.digest

    def test_digest_separates_components(self):
        base = make_key()
        assert make_key(source=SOURCE + "\n").digest != base.digest
        assert make_key(kind="compile").digest != base.digest
        assert make_key(backend="shmem").digest != base.digest
        assert make_key(model={"alpha": 1.0}).digest != base.digest

    def test_model_accepts_dataclass(self):
        from repro.machine.model import MachineModel

        a = make_key(model=MachineModel.message_passing())
        b = make_key(model=MachineModel.high_latency())
        assert a.digest != b.digest

    def test_il_sha256_is_content_hash(self):
        assert il_sha256(SOURCE) == il_sha256(SOURCE)
        assert il_sha256(SOURCE) != il_sha256(SOURCE + " ")


class TestPayloadCodec:
    def test_ndarray_roundtrip_bit_exact(self):
        arr = np.random.default_rng(0).standard_normal((3, 4))
        out = decode_payload(
            json.loads(json.dumps(encode_payload({"a": arr})))
        )
        assert out["a"].dtype == arr.dtype
        assert np.array_equal(out["a"], arr)

    def test_complex_and_nested(self):
        arr = (np.arange(6) + 1j * np.arange(6)).reshape(2, 3)
        doc = {"nested": {"xs": [arr, 1, "s"]}, "n": np.int64(7)}
        out = decode_payload(json.loads(json.dumps(encode_payload(doc))))
        assert np.array_equal(out["nested"]["xs"][0], arr)
        assert out["n"] == 7 and isinstance(out["n"], int)


class TestStoreBasics:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = make_key()
        payload = {"makespan": 12.5, "arr": np.arange(4.0)}
        digest = store.put(key, payload)
        assert digest == key.digest
        got = store.get(key)
        assert got["makespan"] == 12.5
        assert np.array_equal(got["arr"], np.arange(4.0))
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_miss_counts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get(make_key()) is None
        assert store.stats.misses == 1 and store.stats.hit_rate == 0.0

    def test_contains_has_no_stats_side_effects(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = make_key()
        assert not store.contains(key)
        store.put(key, {"v": 1})
        assert store.contains(key)
        assert store.stats.hits == 0 and store.stats.misses == 0

    def test_len_counts_published_records_only(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(make_key(), {"v": 1})
        store.put(make_key(kind="compile"), {"v": 2})
        # A stray crashed-writer temp file must not count (or be served).
        stray = store._path(make_key().digest).parent / "x.tmp"
        stray.write_text("garbage")
        assert len(store) == 2

    def test_two_stores_share_one_directory(self, tmp_path):
        a = ArtifactStore(tmp_path)
        b = ArtifactStore(tmp_path)
        key = make_key()
        a.put(key, {"v": 41})
        assert b.get(key) == {"v": 41}


class TestCorruption:
    """Every corruption mode reads as a miss + quarantine, never a serve."""

    def _entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = make_key()
        store.put(key, {"makespan": 1.0, "arr": np.ones(3)})
        return store, key, store._path(key.digest)

    @pytest.mark.parametrize("mutate", [
        lambda p: p.write_bytes(p.read_bytes()[: len(p.read_bytes()) // 2]),
        lambda p: p.write_bytes(b"\xf6\x00" + p.read_bytes()[2:]),
        lambda p: p.write_bytes(p.read_bytes() + b"trailing"),
        lambda p: p.write_text("{}"),
        lambda p: p.write_text("not json at all"),
    ], ids=["truncated", "bitflip", "appended", "empty-object", "not-json"])
    def test_corrupt_record_never_served(self, tmp_path, mutate):
        store, key, path = self._entry(tmp_path)
        mutate(path)
        assert store.get(key) is None
        assert store.stats.quarantined == 1
        assert not path.exists()
        assert len(store.quarantined_files()) == 1
        # The slot is reusable: recompute-and-rewrite heals the store.
        store.put(key, {"makespan": 1.0, "arr": np.ones(3)})
        assert store.get(key)["makespan"] == 1.0

    def test_payload_tamper_detected(self, tmp_path):
        store, key, path = self._entry(tmp_path)
        record = json.loads(path.read_text())
        record["payload"]["makespan"] = 999.0  # sha256 now stale
        path.write_text(json.dumps(record))
        assert store.get(key) is None
        assert store.stats.quarantined == 1

    def test_record_under_wrong_address_detected(self, tmp_path):
        store, key, path = self._entry(tmp_path)
        other = make_key(kind="compile")
        dest = store._path(other.digest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, dest)  # a record filed under someone else's key
        assert store.get(other) is None
        assert store.stats.quarantined == 1

    def test_strict_mode_raises(self, tmp_path):
        store, key, path = self._entry(tmp_path)
        path.write_text("garbage")
        with pytest.raises(ArtifactIntegrityError):
            store.get(key, strict=True)
        assert not path.exists()  # quarantined as well as raised


# ---------------------------------------------------------------------- #
# concurrency (two processes racing on the same key)
# ---------------------------------------------------------------------- #


def _race_writer(root: str, variant: int, iters: int) -> None:
    store = ArtifactStore(root)
    key = make_key()
    payload = {"variant": variant, "arr": np.full(8, float(variant))}
    for _ in range(iters):
        store.put(key, payload)


class TestConcurrentAccess:
    def test_two_process_write_race_reader_never_sees_partial(self, tmp_path):
        """Two processes hammer the same key with different complete
        payloads while the parent reads in strict mode: every observed
        value is one of the two complete payloads, verification never
        fails, and nothing lands in quarantine."""
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        writers = [
            ctx.Process(target=_race_writer, args=(str(tmp_path), v, 40))
            for v in (1, 2)
        ]
        for w in writers:
            w.start()
        reader = ArtifactStore(tmp_path)
        key = make_key()
        seen = set()
        try:
            while any(w.is_alive() for w in writers):
                got = reader.get(key, strict=True)  # raises on any corrupt read
                if got is not None:
                    assert got["variant"] in (1, 2)
                    assert np.array_equal(
                        got["arr"], np.full(8, float(got["variant"]))
                    )
                    seen.add(got["variant"])
        finally:
            for w in writers:
                w.join(timeout=30)
        assert all(w.exitcode == 0 for w in writers)
        assert reader.stats.quarantined == 0
        assert not reader.quarantined_files()
        # The surviving record is complete and verifiable.
        final = reader.get(key, strict=True)
        assert final["variant"] in (1, 2)
        assert seen, "reader never observed a published record"

    def test_concurrent_distinct_keys(self, tmp_path):
        """Writers on distinct keys (the common serve pattern) coexist."""
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )

        def put_kind(kind):
            ArtifactStore(tmp_path).put(
                make_key(kind=kind), {"kind": kind}
            )

        procs = [
            ctx.Process(target=put_kind, args=(k,))
            for k in ("run", "compile", "check", "tune")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
        store = ArtifactStore(tmp_path)
        assert len(store) == 4
        for kind in ("run", "compile", "check", "tune"):
            assert store.get(make_key(kind=kind)) == {"kind": kind}
