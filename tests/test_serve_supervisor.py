"""The serve layer: job specs, supervised execution, failure policy.

Pins the service contract (docs/SERVE.md): jobs complete, retry, degrade
or fail *cleanly* — a worker SIGKILL mid-job surfaces as a restarted
worker and a retried attempt, a stalled attempt as a timeout, a job that
exhausts its budget as poison, an overloaded queue as shed — and
repeated jobs are served from the shared artifact store rather than
recomputed.
"""

import numpy as np
import pytest

from repro.apps.workqueue import workqueue_source
from repro.core.errors import ServiceOverloadError
from repro.serve import (
    JobOutcome,
    JobSpec,
    ServeSession,
    Supervisor,
    SupervisorConfig,
    artifact_key,
    execute_job,
    latency_percentiles,
)

NPROCS = 3
SOURCE = workqueue_source(2, NPROCS)

FAST = dict(
    workers=2, timeout_s=5.0, backoff_base_s=0.01, poll_s=0.02, seed=7
)


def spec(**kw):
    kw.setdefault("kind", "run")
    kw.setdefault("source", SOURCE)
    kw.setdefault("nprocs", NPROCS)
    return JobSpec(**kw)


class TestJobSpec:
    def test_rejects_unknown_kind_and_model(self):
        with pytest.raises(ValueError):
            spec(kind="transmogrify")
        with pytest.raises(ValueError):
            spec(model="quantum")

    def test_service_fields_do_not_change_artifact_key(self):
        base = artifact_key(spec())
        tweaked = artifact_key(spec(
            label="other", timeout_s=1.0, deadline_s=2.0, max_attempts=9,
            chaos=(("kill_attempts", (1,)),), job_id="custom",
        ))
        assert tweaked.digest == base.digest

    def test_key_fields_do_change_artifact_key(self):
        base = artifact_key(spec())
        assert artifact_key(spec(kind="compile")).digest != base.digest
        assert artifact_key(spec(seed=8)).digest != base.digest
        assert artifact_key(spec(backend="shmem")).digest != base.digest
        assert artifact_key(spec(model="high-latency")).digest != base.digest

    def test_dict_form_addresses_identically(self):
        s = spec()
        assert artifact_key(s.as_dict()).digest == artifact_key(s).digest

    def test_auto_job_id_is_content_derived(self):
        assert spec().job_id == spec().job_id
        assert spec().job_id != spec(kind="compile").job_id


class TestExecuteJob:
    def test_run_job_and_cross_call_cache(self, tmp_path):
        payload, cached = execute_job(spec().as_dict(), 1, str(tmp_path))
        assert not cached
        assert payload["makespan"] > 0
        assert payload["result_sha256"]
        again, cached = execute_job(spec().as_dict(), 1, str(tmp_path))
        assert cached
        assert again == payload

    def test_compile_and_check_bodies(self, tmp_path):
        compiled, _ = execute_job(
            spec(kind="compile").as_dict(), 1, str(tmp_path)
        )
        assert "array" in compiled["program"]
        checked, _ = execute_job(spec(kind="check").as_dict(), 1, None)
        assert checked["ok"] is True


class TestSupervisorPolicy:
    def test_clean_jobs_complete_in_submission_order(self, tmp_path):
        jobs = [spec(), spec(kind="check"), spec(kind="compile")]
        with Supervisor(tmp_path, SupervisorConfig(**FAST)) as sup:
            out = sup.run_jobs(jobs)
        assert [o.kind for o in out] == ["run", "check", "compile"]
        assert all(o.status in ("ok", "cached") and o.attempts == 1
                   for o in out)

    def test_sigkilled_worker_restarts_and_job_retries(self, tmp_path):
        killed = spec(chaos=(("kill_attempts", (1,)),), label="killed")
        with Supervisor(tmp_path, SupervisorConfig(**FAST)) as sup:
            (out,) = sup.run_jobs([killed])
            stats = sup.stats
        assert out.status == "ok" and out.attempts == 2 and out.retries == 1
        assert stats.crashes == 1 and stats.workers_restarted == 1

    def test_stalled_attempt_times_out_then_succeeds(self, tmp_path):
        cfg = SupervisorConfig(**{**FAST, "timeout_s": 0.5})
        stalled = spec(chaos=(("stall_attempts", (1,)), ("stall_s", 5.0)),
                       timeout_s=0.5)
        with Supervisor(tmp_path, cfg) as sup:
            (out,) = sup.run_jobs([stalled])
            stats = sup.stats
        assert out.status == "ok" and out.attempts == 2
        assert stats.timeouts == 1 and stats.workers_restarted == 1

    def test_poison_after_attempt_budget(self, tmp_path):
        doomed = spec(chaos=(("kill_attempts", (1, 2, 3)),), max_attempts=3)
        with Supervisor(tmp_path, SupervisorConfig(**FAST)) as sup:
            (out,) = sup.run_jobs([doomed])
            assert sup.poison == [out]
            stats = sup.stats
        assert out.status == "poison" and out.attempts == 3
        assert out.error_type == "PoisonJobError"
        assert stats.poisoned == 1 and stats.retries == 2

    def test_typed_job_error_fails_without_retry(self, tmp_path):
        bad = spec(source="this is not a program {", kind="compile")
        with Supervisor(tmp_path, SupervisorConfig(**FAST)) as sup:
            (out,) = sup.run_jobs([bad])
            stats = sup.stats
        assert out.status == "failed" and out.attempts == 1
        assert out.error_type  # parser's typed exception name
        assert stats.retries == 0 and stats.crashes == 0

    def test_submit_sheds_at_capacity(self, tmp_path):
        cfg = SupervisorConfig(**{**FAST, "queue_capacity": 2})
        with Supervisor(tmp_path, cfg) as sup:
            sup.submit(spec(label="a"))
            sup.submit(spec(label="b"))
            with pytest.raises(ServiceOverloadError):
                sup.submit(spec(label="c"))
            out = sup.drain()
        assert len(out) == 2

    def test_run_jobs_converts_overload_to_shed_outcomes(self, tmp_path):
        cfg = SupervisorConfig(**{**FAST, "queue_capacity": 2})
        jobs = [spec(label=f"j{i}", seed=i) for i in range(5)]
        with Supervisor(tmp_path, cfg) as sup:
            out = sup.run_jobs(jobs)
        assert len(out) == 5
        shed = [o for o in out if o.status == "shed"]
        assert len(shed) == 3
        assert all(o.error_type == "ServiceOverloadError" for o in shed)

    def test_expired_deadline_sheds_before_dispatch(self, tmp_path):
        # Deadline already past at submission: shed, never dispatched.
        hopeless = spec(deadline_s=0.0)
        with Supervisor(tmp_path, SupervisorConfig(**FAST)) as sup:
            (out,) = sup.run_jobs([hopeless])
            stats = sup.stats
        assert out.status == "shed"
        assert stats.dispatched == 0 and stats.shed == 1

    def test_backoff_is_seeded_and_monotone_in_attempt(self, tmp_path):
        cfg = SupervisorConfig(**FAST)
        with Supervisor(tmp_path, cfg) as a, Supervisor(tmp_path, cfg) as b:
            assert a._backoff("job-x", 1) == b._backoff("job-x", 1)
            assert a._backoff("job-x", 2) > a._backoff("job-x", 1)
            assert a._backoff("job-x", 1) != a._backoff("job-y", 1)


class TestServeSession:
    def test_second_run_is_served_from_cache(self, tmp_path):
        session = ServeSession(str(tmp_path), SupervisorConfig(**FAST))
        jobs = [spec(), spec(kind="compile")]
        first = session.run_jobs(jobs)
        assert all(o.status == "ok" for o in first)
        second = session.run_jobs(jobs)
        assert all(o.status == "cached" and o.attempts == 0 for o in second)
        s = session.summary()
        assert s["jobs"] == 4
        assert s["statuses"] == {"cached": 2, "ok": 2}
        assert s["cache_hit_rate"] == 0.5
        assert s["latency"]["p50_s"] <= s["latency"]["p99_s"]

    def test_fresh_session_shares_the_store(self, tmp_path):
        ServeSession(str(tmp_path), SupervisorConfig(**FAST)).run_jobs(
            [spec()]
        )
        other = ServeSession(str(tmp_path), SupervisorConfig(**FAST))
        (out,) = other.run_jobs([spec()])
        assert out.status == "cached"


class TestOutcomeAccounting:
    def test_fingerprint_excludes_latency(self):
        a = JobOutcome(job_id="j", kind="run", label="j", status="ok",
                       attempts=1, value={"x": 1}, latency_s=0.5)
        b = JobOutcome(job_id="j", kind="run", label="j", status="ok",
                       attempts=1, value={"x": 1}, latency_s=9.9)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_hashes_arrays(self):
        v1 = {"arr": np.arange(3.0)}
        v2 = {"arr": np.arange(3.0) + 1}
        a = JobOutcome(job_id="j", kind="run", label="j", status="ok",
                       value=v1)
        b = JobOutcome(job_id="j", kind="run", label="j", status="ok",
                       value=v2)
        assert a.fingerprint() != b.fingerprint()

    def test_latency_percentiles(self):
        assert latency_percentiles([]) == {
            "p50_s": 0.0, "p99_s": 0.0, "mean_s": 0.0, "max_s": 0.0
        }
        xs = [0.1 * i for i in range(1, 11)]
        lat = latency_percentiles(xs)
        assert lat["p50_s"] == pytest.approx(0.5, abs=0.11)
        assert lat["p99_s"] == pytest.approx(1.0, abs=0.01)
        assert lat["max_s"] == pytest.approx(1.0)
