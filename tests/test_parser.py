"""Unit tests for the IL+XDP lexer, parser and printer."""

import pytest

from repro.core.errors import ParseError
from repro.core.ir.lexer import tokenize
from repro.core.ir.nodes import (
    ArrayDecl, ArrayRef, Assign, Await, BinOp, CallStmt, DoLoop, ExprStmt,
    Full, Guarded, IfStmt, Index, IntConst, Iown, MaxIntConst, Mylb, Mypid,
    Range, RecvStmt, ScalarDecl, SendStmt, UnaryOp, VarRef, XferOp,
)
from repro.core.ir.parser import parse_expression, parse_program, parse_statements
from repro.core.ir.printer import print_expr, print_program, print_stmt


class TestLexer:
    def test_transfer_operators_longest_match(self):
        toks = [t.text for t in tokenize("a -=> b <=- c <= d <- e -> f =>")
                if t.kind == "OP"]
        assert toks == ["-=>", "<=-", "<=", "<-", "->", "=>"]

    def test_comments(self):
        toks = tokenize("x = 1 // a comment\ny = 2 # another\n")
        names = [t.text for t in toks if t.kind == "NAME"]
        assert names == ["x", "y"]

    def test_numbers(self):
        toks = tokenize("1 2.5 1e3 2.5e-2 7")
        kinds = [(t.kind, t.text) for t in toks if t.kind in ("INT", "FLOAT")]
        assert kinds == [
            ("INT", "1"), ("FLOAT", "2.5"), ("FLOAT", "1e3"),
            ("FLOAT", "2.5e-2"), ("INT", "7"),
        ]

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("x = @")

    def test_newlines_collapsed(self):
        toks = tokenize("a\n\n\nb")
        kinds = [t.kind for t in toks]
        assert kinds == ["NAME", "NEWLINE", "NAME", "NEWLINE", "EOF"]


class TestExpressionParsing:
    def test_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert e == BinOp("+", IntConst(1), BinOp("*", IntConst(2), IntConst(3)))

    def test_parens(self):
        e = parse_expression("(1 + 2) * 3")
        assert e == BinOp("*", BinOp("+", IntConst(1), IntConst(2)), IntConst(3))

    def test_comparison_and_bool(self):
        e = parse_expression("iown(A[i]) and x < 3 or not y")
        assert isinstance(e, BinOp) and e.op == "or"
        assert isinstance(e.rhs, UnaryOp) and e.rhs.op == "not"

    def test_le_minus_resplit(self):
        # '<=-' in expression context is '<=' followed by unary minus.
        e = parse_expression("x <=- 2")
        assert e == BinOp("<=", VarRef("x"), UnaryOp("-", IntConst(2)))

    def test_intrinsics(self):
        assert parse_expression("mypid") == Mypid()
        assert parse_expression("MAXINT") == MaxIntConst()
        e = parse_expression("mylb(A[*], 1)")
        assert e == Mylb(ArrayRef("A", (Full(),)), IntConst(1))
        assert isinstance(parse_expression("iown(A[i,j])"), Iown)
        assert isinstance(parse_expression("await(A[1:2])"), Await)

    def test_subscripts(self):
        e = parse_expression("A[i, *, 1:4:2, :, 3:]")
        assert isinstance(e, ArrayRef)
        subs = e.subs
        assert isinstance(subs[0], Index)
        assert isinstance(subs[1], Full)
        assert subs[2] == Range(IntConst(1), IntConst(4), IntConst(2))
        assert subs[3] == Range(None, None, None)
        assert subs[4] == Range(IntConst(3), None, None)

    def test_min_max(self):
        e = parse_expression("min(x, max(y, 2))")
        assert e == BinOp("min", VarRef("x"), BinOp("max", VarRef("y"), IntConst(2)))

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 )")

    def test_keyword_as_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("do + 1")


class TestStatementParsing:
    def test_all_transfer_forms(self):
        block = parse_statements(
            "A[i] ->\n"
            "A[i] -> {1, 2}\n"
            "A[i] =>\n"
            "A[i] -=>\n"
            "T[mypid] <- B[i]\n"
            "A[i] <=\n"
            "A[i] <=-\n"
        )
        ops = [
            s.op for s in block
        ]
        assert ops == [
            XferOp.SEND_VALUE, XferOp.SEND_VALUE, XferOp.SEND_OWNER,
            XferOp.SEND_OWNER_VALUE, XferOp.RECV_VALUE, XferOp.RECV_OWNER,
            XferOp.RECV_OWNER_VALUE,
        ]
        assert block.stmts[1].dests == (IntConst(1), IntConst(2))
        assert block.stmts[4].source == ArrayRef("B", (Index(VarRef("i")),))

    def test_guard_single_statement(self):
        (s,) = parse_statements("iown(B[i]) : B[i] ->").stmts
        assert isinstance(s, Guarded)
        assert isinstance(s.body.stmts[0], SendStmt)

    def test_guard_inline_braces(self):
        (s,) = parse_statements("iown(B[i]) : { B[i] -> }").stmts
        assert isinstance(s, Guarded) and len(s.body) == 1

    def test_guard_multiline(self):
        (s,) = parse_statements(
            "iown(A[i]) : {\n  T[mypid] <- B[i]\n  await(T[mypid])\n}"
        ).stmts
        assert isinstance(s, Guarded) and len(s.body) == 2
        assert isinstance(s.body.stmts[1], ExprStmt)

    def test_triplet_colon_is_not_guard(self):
        (s,) = parse_statements("A[1:4] = 0").stmts
        assert isinstance(s, Assign)

    def test_do_loop(self):
        (s,) = parse_statements("do i = 1, n\n  A[i] = 0\nenddo").stmts
        assert isinstance(s, DoLoop)
        assert s.var == "i" and s.hi == VarRef("n")
        assert s.step == IntConst(1)

    def test_do_loop_with_step(self):
        (s,) = parse_statements("do i = 10, 1, -2\nenddo").stmts
        assert s.step == IntConst(-2)

    def test_if_else(self):
        (s,) = parse_statements(
            "if x < 2 then\n  x = 1\nelse\n  x = 2\nendif"
        ).stmts
        assert isinstance(s, IfStmt) and len(s.orelse) == 1

    def test_call(self):
        (s,) = parse_statements("call fft1D(A[i,*,k])").stmts
        assert isinstance(s, CallStmt)
        assert isinstance(s.args[0], ArrayRef)

    def test_call_scalar_arg(self):
        (s,) = parse_statements("call work(100)").stmts
        assert s.args == (IntConst(100),)

    def test_scalar_assign(self):
        (s,) = parse_statements("x = mypid + 1").stmts
        assert s == Assign(VarRef("x"), BinOp("+", Mypid(), IntConst(1)))

    def test_nested_guard_in_loop(self):
        (loop,) = parse_statements(
            "do i = 1, 4\n  await(A[i]) : { A[i] = A[i] + 1 }\nenddo"
        ).stmts
        assert isinstance(loop.body.stmts[0], Guarded)

    def test_garbage_after_ref(self):
        with pytest.raises(ParseError):
            parse_statements("A[i] @@")
        with pytest.raises(ParseError):
            parse_statements("A[i] + 2 extra")


class TestDeclarations:
    def test_array_full(self):
        p = parse_program(
            "array B[1:16,1:16] dist (BLOCK, CYCLIC) seg (4,2) dtype complex128\n"
        )
        (d,) = p.decls
        assert isinstance(d, ArrayDecl)
        assert d.bounds == ((1, 16), (1, 16))
        assert d.dist == "(BLOCK, CYCLIC)"
        assert d.segment_shape == (4, 2)
        assert d.dtype == "complex128"

    def test_array_universal(self):
        p = parse_program("array W[1:4] universal\n")
        assert p.decls[0].universal

    def test_universal_and_dist_conflict(self):
        with pytest.raises(ParseError):
            parse_program("array W[1:4] universal dist (BLOCK)\n")

    def test_block_cyclic_spec(self):
        p = parse_program("array A[1:8] dist (CYCLIC(2))\n")
        assert p.decls[0].dist == "(CYCLIC(2))"

    def test_scalar_with_init(self):
        p = parse_program("scalar n = 8\n")
        (d,) = p.decls
        assert isinstance(d, ScalarDecl) and d.init == IntConst(8)

    def test_rank_mismatch(self):
        with pytest.raises(ParseError):
            parse_program("array A[1:4,1:4] dist (BLOCK)\n")
        with pytest.raises(ParseError):
            parse_program("array A[1:4] seg (1,1)\n")

    def test_unknown_dist(self):
        with pytest.raises(ParseError):
            parse_program("array A[1:4] dist (RANDOM)\n")

    def test_negative_bounds(self):
        p = parse_program("array A[-4:-1] dist (BLOCK)\n")
        assert p.decls[0].bounds == ((-4, -1),)


class TestRoundTrip:
    PROGRAMS = [
        # the paper's section-2.2 naive translation
        """array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (BLOCK) seg (1)
array T[1:4] dist (BLOCK) seg (1)
scalar n = 8

do i = 1, n
  iown(B[i]) : {
    B[i] ->
  }
  iown(A[i]) : {
    T[mypid] <- B[i]
    await(T[mypid])
    A[i] = A[i] + T[mypid]
  }
enddo
""",
        # the paper's section-2.2 ownership-migration variant
        """array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
scalar n = 8

do i = 1, n
  iown(A[i]) : {
    A[i] -=>
  }
  iown(B[i]) : {
    A[i] <=-
  }
  await(A[i]) : {
    A[i] = A[i] + B[i]
  }
enddo
""",
        # FFT loop 3 (redistribution)
        """array A[1:4,1:4,1:4] dist (*, *, BLOCK) seg (4,1,1) dtype complex128

do p = 1, 4
  iown(A[*,*,p]) : {
    do n = 1, 4
      A[*,n,p] -=>
    enddo
    do n = 1, 4
      A[*,p,n] <=-
    enddo
  }
enddo
""",
    ]

    @pytest.mark.parametrize("idx", range(len(PROGRAMS)))
    def test_parse_print_parse(self, idx):
        src = self.PROGRAMS[idx]
        p1 = parse_program(src)
        text = print_program(p1)
        p2 = parse_program(text)
        assert p1 == p2

    def test_expr_print_parse(self):
        for text in [
            "1 + 2 * 3", "(1 + 2) * 3", "a - b - c", "a - (b - c)",
            "x <= -2", "iown(A[1:4:2,*]) and await(B[mypid])",
            "mylb(A[*], 1) + myub(A[*], 2)", "min(a, b) * max(1, nprocs)",
            "not (a or b)", "-x % 3",
        ]:
            e = parse_expression(text)
            assert parse_expression(print_expr(e)) == e, text
