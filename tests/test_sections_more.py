"""Additional unit tests for section algebra: difference, grouping,
rendering, and corner geometries."""

import pytest

from repro.core.sections import (
    Section,
    Triplet,
    group_into_triplets,
    section,
    section_difference,
    triplet,
    triplet_difference,
)


class TestTripletDifference:
    def test_disjoint_returns_original(self):
        t = Triplet(1, 4)
        assert triplet_difference(t, Triplet(10, 12)) == [t]

    def test_full_cover_returns_empty(self):
        assert triplet_difference(Triplet(2, 6, 2), Triplet(0, 10)) == []

    def test_middle_cut(self):
        out = triplet_difference(Triplet(1, 9), Triplet(4, 6))
        assert [list(t) for t in out] == [[1, 2, 3], [7, 8, 9]]

    def test_strided_cut_leaves_strided_remainder(self):
        # {0..7} minus evens -> odds.
        out = triplet_difference(Triplet(0, 7), Triplet(0, 6, 2))
        assert len(out) == 1 and list(out[0]) == [1, 3, 5, 7]

    def test_cut_of_strided_by_unit(self):
        # {1,4,7,10} minus 4:7 -> {1,10}, groupable as one step-9 triplet.
        out = triplet_difference(Triplet(1, 10, 3), Triplet(4, 7))
        assert sorted(m for t in out for m in t) == [1, 10]

    def test_size_guard(self):
        big = Triplet(0, 10**6)
        with pytest.raises(ValueError, match="too large"):
            triplet_difference(big, Triplet(5, 5))


class TestGroupIntoTriplets:
    def test_empty(self):
        assert group_into_triplets([]) == []

    def test_singleton(self):
        assert group_into_triplets([7]) == [Triplet(7, 7, 1)]

    def test_arithmetic_run(self):
        assert group_into_triplets([2, 5, 8, 11]) == [Triplet(2, 11, 3)]

    def test_mixed_runs(self):
        out = group_into_triplets([1, 2, 3, 10, 20, 30])
        covered = [m for t in out for m in t]
        assert covered == [1, 2, 3, 10, 20, 30]


class TestSectionDifference:
    def test_corner_overlap(self):
        a = section((1, 4), (1, 4))
        b = section((3, 6), (3, 6))
        pieces = section_difference(a, b)
        pts = {p for s in pieces for p in s}
        assert pts == set(a) - set(b)
        # Box decomposition of a corner cut: 2 pieces.
        assert len(pieces) == 2

    def test_hole_in_middle(self):
        a = section((1, 5), (1, 5))
        b = section(3, 3)
        pieces = section_difference(a, b)
        pts = [p for s in pieces for p in s]
        assert len(pts) == 24 and len(set(pts)) == 24

    def test_identity_and_empty(self):
        a = section((1, 4))
        assert section_difference(a, section((9, 10))) == [a]
        assert section_difference(a, a) == []


class TestRendering:
    def test_triplet_str(self):
        assert str(triplet(5)) == "5"
        assert str(Triplet(1, 8)) == "1:8"
        assert str(Triplet(1, 7, 2)) == "1:7:2"

    def test_section_str_matches_paper(self):
        assert str(section((1, 4), 3, (1, 8, 2))) == "[1:4,3,1:7:2]"


class TestGeometry:
    def test_bounding_box_of_scalar(self):
        s = section(4, 7)
        assert s.bounding_box() == s

    def test_high_rank(self):
        s = Section(tuple(Triplet(1, 2) for _ in range(5)))
        assert s.rank == 5 and s.size == 32
        assert (1, 1, 1, 1, 1) in s and (2, 2, 2, 2, 3) not in s

    def test_intersect_scalar_dims(self):
        a = section(3, (1, 10))
        b = section((1, 5), 7)
        assert a.intersect(b) == section(3, 7)
        assert a.intersect(section(4, (1, 10))) is None
