"""Tests for the distributed matrix-multiply app suite.

The suite's contract (ISSUE 8 acceptance): every variant computes
``A @ B`` correctly, bit-identically across the ``msg``/``shmem``
backends, across ``collectives="native"``/``"p2p"`` lowering and across
the VM/interpreter engines, and every variant verifies clean on both
backends.  The digests pinned here are the cross-session goldens the CI
collectives-smoke job checks against.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.matmul import VARIANTS, matmul_source, run_matmul
from repro.core.analysis import verify_communication
from repro.core.ir.parser import parse_program

# sha256 of the result array bytes at n=8, P=4, seed=11 — any engine,
# backend or lowering change that shifts a single bit shows up here.
GOLDEN = {
    "cannon": "92037fdc5bb644f1d28253c40e645c208033dbd39933fc0c6b545cabdcce0f17",
    "summa": "2fd11faf6a9d15076389217d063d511978603cb07ba56d559a708a26895af4bc",
    "gather": "76c91dc910c8d2d6d33ebe1afb467dc7c5331782794ecfa285bdb51a72954c5e",
    "outer": "a21662f3423a39ef9baa0713a8ab83be6a1aa1908655ff62229ee76476c0653c",
}


class TestSource:
    def test_variants_exposed(self):
        assert set(VARIANTS) == set(GOLDEN)

    def test_rejects_bad_variant_and_shape(self):
        with pytest.raises(ValueError, match="variant"):
            matmul_source(8, 4, "strassen")
        with pytest.raises(ValueError, match="multiple"):
            matmul_source(10, 4, "summa")

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_sources_parse(self, variant):
        parse_program(matmul_source(8, 4, variant))


class TestGolden:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_vm_msg_native_matches_golden(self, variant):
        r = run_matmul(8, 4, variant, backend="msg")
        assert r.correct
        assert r.digest == GOLDEN[variant]

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_bit_identity_across_paths(self, variant):
        runs = [
            run_matmul(8, 4, variant, backend="shmem"),
            run_matmul(8, 4, variant, backend="msg", collectives="p2p"),
            run_matmul(8, 4, variant, backend="shmem", collectives="p2p"),
            run_matmul(8, 4, variant, path="interp"),
        ]
        for r in runs:
            assert r.correct
            assert r.digest == GOLDEN[variant]


class TestScaling:
    @pytest.mark.parametrize("variant", ["cannon", "summa"])
    def test_larger_machine_still_correct_and_backend_identical(
            self, variant):
        msg = run_matmul(16, 8, variant, backend="msg")
        shm = run_matmul(16, 8, variant, backend="shmem")
        assert msg.correct and shm.correct
        assert msg.digest == shm.digest

    def test_result_matches_numpy(self):
        r = run_matmul(8, 4, "gather", seed=3)
        rng = np.random.default_rng(3)
        a0 = rng.standard_normal((8, 8))
        b0 = rng.standard_normal((8, 8))
        assert np.allclose(r.result, a0 @ b0)


class TestVerification:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("backend", ["msg", "shmem"])
    def test_check_clean(self, variant, backend):
        program = parse_program(matmul_source(8, 4, variant))
        report = verify_communication(program, 4, backend=backend)
        assert report.ok, report.format()
        assert not report.findings, report.format()
