"""Seeded generator of small SPMD IL+XDP programs for differential testing.

Every program comes from one of five *templates* — communication patterns
taken from the paper (halo exchange, ownership ring, the section-2.7 work
pool, gather/compute/scatter redistribution, and the translator's own
output on random sequential loops).  Template instances are
correct-by-construction: they parse, verify and run clean on the strict
engine.  From each instance the generator then derives *mutants* by
applying one seeded fault — dropping a send or a receive, misdirecting a
send, renaming a receive's tag section, shrinking a receive's destination,
removing an await, duplicating a receive, reading an unowned element, or
acquiring an already-owned section.  Each fault is a communication bug the
static verifier (:mod:`repro.core.analysis.verify_comm`) claims to catch.

The differential harness (``tests/test_fuzz_differential.py``) runs every
program through both the verifier and the strict reference engine and
checks the two against each other:

* verifier says *clean*  ⇒  the engine must not raise;
* the engine raises      ⇒  the verifier must have flagged something.

Everything is deterministic in ``base_seed``: ``generate_battery(n, s)``
returns the same programs forever, so failures are replayable by seed.

Run as a script to dump a battery to stdout or a directory::

    PYTHONPATH=src python tests/fuzz/gen_programs.py --count 10
    PYTHONPATH=src python tests/fuzz/gen_programs.py --count 200 --out /tmp/fuzz
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = [
    "FuzzProgram", "generate_battery", "FAMILIES", "SHMEM_FAMILIES",
    "COLLECTIVE_FAMILIES",
]


@dataclass(frozen=True)
class FuzzProgram:
    """One generated program plus the provenance needed to replay it."""

    family: str
    seed: int
    nprocs: int
    mutation: str | None  # None => correct-by-construction
    source: str

    @property
    def label(self) -> str:
        m = self.mutation if self.mutation else "good"
        return f"{self.family}/seed={self.seed}/{m}/P={self.nprocs}"


# --------------------------------------------------------------------- #
# template machinery
# --------------------------------------------------------------------- #


@dataclass
class _L:
    """One source line plus the faults that can be seeded into it.

    ``tag`` marks lines eligible for the *generic* mutations (``send`` →
    drop_send, ``recv`` → drop_recv/double_recv); ``alts`` maps a mutation
    name to the replacement text for that line (templates spell out the
    exact broken line, so mutation never guesses at syntax).  ``probe``
    lines contribute no text to the good program — they exist only to host
    injected statements (unowned reads, overlapping acquires).
    """

    text: str | None
    tag: str = ""
    alts: dict[str, str] = field(default_factory=dict)


def _render(lines: list[_L]) -> str:
    return "\n".join(ln.text for ln in lines if ln.text is not None) + "\n"


def _mutations(lines: list[_L]) -> list[tuple[int, str]]:
    out: list[tuple[int, str]] = []
    for i, ln in enumerate(lines):
        if ln.tag == "send":
            out.append((i, "drop_send"))
        if ln.tag == "recv":
            out.append((i, "drop_recv"))
            out.append((i, "double_recv"))
        for name in sorted(ln.alts):
            out.append((i, name))
    return out


def _apply(lines: list[_L], idx: int, mutation: str) -> str:
    mutated: list[str] = []
    for i, ln in enumerate(lines):
        if i != idx:
            if ln.text is not None:
                mutated.append(ln.text)
            continue
        if mutation == "drop_send" or mutation == "drop_recv":
            continue
        if mutation == "double_recv":
            assert ln.text is not None
            mutated.append(ln.text)
            mutated.append(ln.text)
            continue
        mutated.append(ln.alts[mutation])
    return "\n".join(mutated) + "\n"


def _block(nprocs: int, nelem: int, seg: int, p: int) -> tuple[int, int]:
    """1-based [lb, ub] of pid ``p``'s BLOCK segment (seg * 1 elements)."""
    lb = (p - 1) * seg + 1
    return lb, min(lb + seg - 1, nelem)


# --------------------------------------------------------------------- #
# templates
# --------------------------------------------------------------------- #


def _t_halo(rng: random.Random) -> tuple[list[_L], int]:
    """Nearest-neighbour halo exchange of boundary values, left→right.

    Each pid p < P value-sends its right boundary to p+1, which receives
    it into its own two-slot halo array ``H`` and folds it into its first
    element after the await.
    """
    P = rng.randint(2, 4)
    b = rng.randint(2, 4)
    n = P * b
    vec = rng.random() < 0.5 and b >= 2
    lines = [
        _L(f"array A[1:{n}] dist (BLOCK) seg ({b})"),
        _L(f"array H[1:{2 * P}] dist (BLOCK) seg (2)"),
        _L(""),
    ]
    for p in range(1, P):
        lb, ub = _block(P, n, b, p)
        nlb, _ = _block(P, n, b, p + 1)
        h1 = 2 * (p + 1) - 1
        src = f"A[{ub - 1}:{ub}]" if vec else f"A[{ub}]"
        into = f"H[{h1}:{h1 + 1}]" if vec else f"H[{h1}]"
        wrong_dest = p + 2 if p + 2 <= P else 1
        lines += [
            _L(f"mypid == {p} : {{"),
            _L(f"  A[{ub}] = A[{ub}] + {p}"),
            _L(f"  {src} -> {{{p + 1}}}", tag="send",
               alts={"wrong_dest": f"  {src} -> {{{wrong_dest}}}"}),
            _L("}"),
            _L(f"mypid == {p + 1} : {{"),
            _L(f"  {into} <- {src}", tag="recv",
               alts=dict(
                   {"wrong_tag": f"  {into} <- A[{lb}]"} if not vec else
                   {"wrong_tag": f"  {into} <- A[{lb}:{lb + 1}]",
                    "size_mismatch": f"  H[{h1}] <- {src}"},
               )),
            _L(f"  await({into}) : {{",
               alts={"drop_await": f"  mypid == {p + 1} : {{"}),
            _L(f"    A[{nlb}] = A[{nlb}] + H[{h1}]"),
            _L("  }"),
            _L("}"),
        ]
    lines.append(_L(
        None,
        alts={
            "unowned_read": f"mypid == 1 : {{ A[1] = A[1] + H[{2 * P}] }}",
            "acquire_overlap": "mypid == 1 : { H[1] <=- }",
        },
    ))
    return lines, P


def _t_ring(rng: random.Random) -> tuple[list[_L], int]:
    """One rotation of block ownership (with values) around the ring."""
    P = rng.randint(2, 4)
    b = rng.randint(2, 3)
    n = P * b
    lines = [
        _L(f"array A[1:{n}] dist (BLOCK) seg ({b})"),
        _L(""),
        _L(None, alts={
            "acquire_overlap": "mypid == 1 : { A[1] <=- }",
        }),
    ]
    for p in range(1, P + 1):
        succ = p % P + 1
        lb, ub = _block(P, n, b, p)
        send = _L(f"mypid == {p} : {{ A[{lb}:{ub}] -=> {{{succ}}} }}",
                  tag="send")
        if P >= 3:  # two hops over: a pid with no matching receive posted
            wrong = succ % P + 1
            send.alts["wrong_dest"] = (
                f"mypid == {p} : {{ A[{lb}:{ub}] -=> {{{wrong}}} }}"
            )
        lines.append(send)
    for p in range(1, P + 1):
        succ = p % P + 1
        lb, ub = _block(P, n, b, p)
        lines += [
            _L(f"mypid == {succ} : {{"),
            _L(f"  A[{lb}:{ub}] <=-", tag="recv",
               alts={"wrong_tag": f"  A[{lb}:{ub - 1}] <=-"} if ub - lb >= 1
               else {}),
            _L(f"  await(A[{lb}:{ub}]) : {{",
               alts={"drop_await": f"  mypid == {succ} : {{"}),
            _L(f"    A[{lb}] = A[{lb}] + 1"),
            _L("  }"),
            _L("}"),
        ]
    return lines, P


def _t_pool(rng: random.Random) -> tuple[list[_L], int]:
    """The section-2.7 work pool, statically scheduled round-robin.

    The master's sends name no recipient and every worker's receive names
    the same one-element section, so matching is the engine's FIFO pool
    discipline.
    """
    P = rng.randint(2, 4)
    nworkers = P - 1
    njobs = rng.randint(nworkers, 2 * P)
    lines = [
        _L(f"array JOB[1:{P}] dist (BLOCK) seg (1)"),
        _L(f"array SLOT[1:{P}] dist (BLOCK) seg (1)"),
        _L(f"array ACC[1:{P}] dist (BLOCK) seg (1)"),
        _L("scalar j"),
        _L(""),
        _L(f"do j = 1, {njobs}"),
        _L("  mypid == 1 : {"),
        _L("    JOB[1] = j"),
        _L("    JOB[1] ->", tag="send",
           alts={"wrong_dest": "    JOB[1] -> {2}"}),
        _L("  }"),
        _L("enddo"),
    ]
    base, extra = divmod(njobs, nworkers)
    for w in range(2, P + 1):
        quota = base + (1 if (w - 1) <= extra else 0)
        if quota == 0:
            continue
        lines += [
            _L(f"mypid == {w} : {{"),
            _L(f"  do j = 1, {quota}"),
            _L(f"    SLOT[{w}] <- JOB[1]", tag="recv",
               alts={"wrong_tag": f"    SLOT[{w}] <- JOB[2]"}),
            _L(f"    await(SLOT[{w}]) : {{",
               alts={"drop_await": f"    mypid == {w} : {{"}),
            _L(f"      ACC[{w}] = ACC[{w}] + SLOT[{w}]"),
            _L("    }"),
            _L("  enddo"),
            _L("}"),
        ]
    foreign = "ACC[3]" if P >= 3 else "JOB[1]"
    lines.append(_L(
        None,
        alts={"unowned_read": f"mypid == 2 : {{ ACC[2] = ACC[2] + {foreign} }}"},
    ))
    return lines, P


def _t_gather_scatter(rng: random.Random) -> tuple[list[_L], int]:
    """Redistribute to one pid, compute there, redistribute back."""
    P = rng.randint(2, 4)
    b = rng.randint(2, 3)
    n = P * b
    lines = [
        _L(f"array A[1:{n}] dist (BLOCK) seg ({b})"),
        _L("scalar i"),
        _L(""),
    ]
    for p in range(1, P + 1):
        lb, _ = _block(P, n, b, p)
        lines.append(_L(f"mypid == {p} : {{ A[{lb}] = A[{lb}] + {p} }}"))
    for p in range(2, P + 1):
        lb, ub = _block(P, n, b, p)
        send = _L(f"mypid == {p} : {{ A[{lb}:{ub}] -=> {{1}} }}", tag="send")
        if P >= 3:
            wrong = p % P + 1 if p % P + 1 != p else 1
            send.alts["wrong_dest"] = (
                f"mypid == {p} : {{ A[{lb}:{ub}] -=> {{{wrong}}} }}"
            )
        lines += [
            send,
            _L("mypid == 1 : {"),
            _L(f"  A[{lb}:{ub}] <=-", tag="recv",
               alts={"wrong_tag": f"  A[{lb}:{ub - 1}] <=-"}),
            _L(f"  await(A[{lb}:{ub}]) : {{",
               alts={"drop_await": "  mypid == 1 : {"}),
            _L(f"    A[{lb}] = A[{lb}] * 2"),
            _L("  }"),
            _L("}"),
        ]
    lines += [
        _L("mypid == 1 : {"),
        _L(f"  do i = 1, {n}"),
        _L("    A[i] = A[i] + 1"),
        _L("  enddo"),
        _L("}"),
    ]
    for p in range(2, P + 1):
        lb, ub = _block(P, n, b, p)
        lines += [
            _L(f"mypid == 1 : {{ A[{lb}:{ub}] -=> {{{p}}} }}", tag="send"),
            _L(f"mypid == {p} : {{"),
            _L(f"  A[{lb}:{ub}] <=-", tag="recv"),
            _L(f"  await(A[{lb}:{ub}]) : {{",
               alts={"drop_await": f"  mypid == {p} : {{"}),
            _L(f"    A[{ub}] = A[{ub}] + 1"),
            _L("  }"),
            _L("}"),
        ]
    return lines, P


def _t_translated(rng: random.Random) -> tuple[list[_L], int]:
    """The translator's own output on a random sequential shifted loop.

    These exercise verifier paths the hand-written templates do not
    (``iown`` rules, unbound pooled sends, computed destinations) and are
    correct by the translator's own correctness, which the repo's tier-1
    tests establish independently.  No fault sites: mutants come from the
    hand-built templates, whose structure the mutations understand.
    """
    from repro.core.ir.parser import parse_program
    from repro.core.ir.printer import print_program
    from repro.core.translate import translate

    P = rng.randint(2, 4)
    n = rng.choice([8, 12])
    sa = rng.choice([1, 2])
    sb = rng.choice([1, 2])
    db = rng.choice(["BLOCK", "CYCLIC"])
    k = rng.randint(1, 2)
    strategy = rng.choice(["owner-computes", "migrate"])
    seq = (
        f"array A[1:{n}] dist (BLOCK) seg ({sa})\n"
        f"array B[1:{n}] dist ({db}) seg ({sb})\n"
        f"\n"
        f"do i = {k + 1}, {n}\n"
        f"  A[i] = A[i] + B[i-{k}]\n"
        f"enddo\n"
    )
    out = print_program(translate(parse_program(seq), P, strategy=strategy))
    return [_L(ln) for ln in out.splitlines()], P


def _t_shmem_fence(rng: random.Random) -> tuple[list[_L], int]:
    """A poststore pipeline read through prefetch fences (section 5).

    On the shared-address binding ``->`` is a poststore into the global
    address space and ``<-`` posts a prefetch fence; the ``await`` *is*
    the fence.  Each pid multiplies its right boundary, poststores it to
    its right neighbour's fence slot ``F``, and the neighbour folds the
    value in — but only behind the fence.  The signature shmem fault is
    seeded by ``missing_fence``: the await vanishes and the consumer
    reads the prefetched lines before they are resident.
    """
    P = rng.randint(2, 4)
    b = rng.randint(2, 3)
    n = P * b
    lines = [
        _L(f"array A[1:{n}] dist (BLOCK) seg ({b})"),
        _L(f"array F[1:{2 * P}] dist (BLOCK) seg (2)"),
        _L(""),
    ]
    for p in range(1, P):
        lb, ub = _block(P, n, b, p)
        nlb, _ = _block(P, n, b, p + 1)
        f = 2 * (p + 1) - 1
        wrong_dest = p + 2 if p + 2 <= P else 1
        lines += [
            _L(f"mypid == {p} : {{"),
            _L(f"  A[{ub}] = A[{ub}] * 2"),
            _L(f"  A[{ub}] -> {{{p + 1}}}", tag="send",
               alts={"wrong_dest": f"  A[{ub}] -> {{{wrong_dest}}}"}),
            _L("}"),
            _L(f"mypid == {p + 1} : {{"),
            _L(f"  F[{f}] <- A[{ub}]", tag="recv",
               alts={"wrong_tag": f"  F[{f}] <- A[{lb}]"}),
            _L(f"  await(F[{f}]) : {{",
               alts={"missing_fence": f"  mypid == {p + 1} : {{"}),
            _L(f"    A[{nlb}] = A[{nlb}] + F[{f}]"),
            _L("  }"),
            _L("}"),
        ]
    return lines, P


def _t_shmem_relay(rng: random.Random) -> tuple[list[_L], int]:
    """An ownership relay chain with a store-before-ownership fault site.

    Block ``p`` travels ``p -> p+1`` as an ownership-with-values store;
    the receiver fences, updates, and keeps it.  The seeded shmem faults:
    ``store_before_ownership`` makes P2 poststore lines of block 1 before
    the relay has delivered their ownership (stores of unowned lines),
    and ``missing_fence`` drops an ownership fence.
    """
    P = rng.randint(3, 4)
    b = rng.randint(2, 3)
    n = P * b
    lines = [
        _L(f"array A[1:{n}] dist (BLOCK) seg ({b})"),
        _L(""),
        # P2 stores an element of block 1 into the global space before
        # its ownership has arrived from P1 — the relay delivers it only
        # in the receive stage below.
        _L(None, alts={
            "store_before_ownership": f"mypid == 2 : {{ A[1] -> {{{P}}} }}",
        }),
    ]
    for p in range(1, P):
        lb, ub = _block(P, n, b, p)
        send = _L(f"mypid == {p} : {{ A[{lb}:{ub}] -=> {{{p + 1}}} }}",
                  tag="send")
        wrong = p + 2 if p + 2 <= P else 1
        if wrong != p + 1:
            send.alts["wrong_dest"] = (
                f"mypid == {p} : {{ A[{lb}:{ub}] -=> {{{wrong}}} }}"
            )
        lines.append(send)
    for p in range(1, P):
        lb, ub = _block(P, n, b, p)
        lines += [
            _L(f"mypid == {p + 1} : {{"),
            _L(f"  A[{lb}:{ub}] <=-", tag="recv",
               alts={"wrong_tag": f"  A[{lb}:{ub - 1}] <=-"} if ub - lb >= 1
               else {}),
            _L(f"  await(A[{lb}:{ub}]) : {{",
               alts={"missing_fence": f"  mypid == {p + 1} : {{"}),
            _L(f"    A[{lb}] = A[{lb}] + {p}"),
            _L("  }"),
            _L("}"),
        ]
    return lines, P


def _t_coll_gather(rng: random.Random) -> tuple[list[_L], int]:
    """An allgather of per-processor contributions into a replicated window.

    Every pid owns one element of ``A`` and one ``P``-wide block of ``W``;
    the collective gathers all contributions into everyone's block.  The
    seeded collective faults: ``missing_participant`` guards a member out
    of the rendezvous (the rest block forever), and
    ``cardinality_mismatch`` lands the one-element chunks in two-element
    slots.
    """
    P = rng.randint(2, 4)
    lines = [
        _L(f"array A[1:{P}] dist (BLOCK) seg (1)"),
        _L(f"array W[1:{P * P}] dist (BLOCK) seg ({P})"),
        _L(""),
    ]
    for p in range(1, P + 1):
        lines.append(_L(f"mypid == {p} : {{ A[{p}] = A[{p}] + {p} }}"))
    coll = f"coll allgather(g, d in 1:{P}) A[g] into W[(d-1)*{P}+g]"
    lines.append(_L(coll, alts={
        "missing_participant": f"mypid < {P} : {{ {coll} }}",
        "cardinality_mismatch":
            f"coll allgather(g, d in 1:{P}) A[g] "
            f"into W[(d-1)*{P}+1:(d-1)*{P}+2]",
    }))
    for p in range(1, P + 1):
        w = (p - 1) * P + (p % P + 1)
        lines.append(_L(f"mypid == {p} : {{ A[{p}] = A[{p}] + W[{w}] }}"))
    return lines, P


def _t_coll_reduce(rng: random.Random) -> tuple[list[_L], int]:
    """A reduce_scatter summing per-processor vectors onto their owners.

    Contributor ``g`` owns the block ``V[(g-1)*P+1 : g*P]`` and supplies
    ``V[(g-1)*P+d]`` to destination ``d``, which sums the chunks into
    ``C[d]`` through the scratch slot ``S[2d-1]``.  Faults:
    ``missing_participant`` (P1 never arrives), ``wrong_reduce_op``
    (members disagree on the combining operator), and
    ``cardinality_mismatch`` (a two-element scratch for one-element
    chunks).
    """
    P = rng.randint(2, 4)
    lines = [
        _L(f"array V[1:{P * P}] dist (BLOCK) seg ({P})"),
        _L(f"array C[1:{P}] dist (BLOCK) seg (1)"),
        _L(f"array S[1:{2 * P}] dist (BLOCK) seg (2)"),
        _L(""),
    ]
    for p in range(1, P + 1):
        for j in range(1, P + 1):
            v = (p - 1) * P + j
            lines.append(
                _L(f"mypid == {p} : {{ V[{v}] = V[{v}] + {p + j} }}")
            )
    head = f"coll reduce_scatter(g, d in 1:{P}, op"
    tail = f") V[(g-1)*{P}+d] into C[d] via S[2*d-1]"
    rs = f"{head} +{tail}"
    lines.append(_L(rs, alts={
        "missing_participant": f"mypid > 1 : {{ {rs} }}",
        "wrong_reduce_op":
            f"mypid == 1 : {{ {head} +{tail} }}\n"
            f"mypid > 1 : {{ {head} max{tail} }}",
        "cardinality_mismatch":
            f"{head} +) V[(g-1)*{P}+d] into C[d] via S[2*d-1:2*d]",
    }))
    for p in range(1, P + 1):
        lines.append(_L(f"mypid == {p} : {{ C[{p}] = C[{p}] * 2 }}"))
    return lines, P


FAMILIES = {
    "halo": _t_halo,
    "ring": _t_ring,
    "pool": _t_pool,
    "gather-scatter": _t_gather_scatter,
    "translated": _t_translated,
}

#: Shared-address fault families, kept separate so the recorded default
#: battery (and its pinned determinism/false-positive numbers) is
#: untouched; the differential harness runs them with ``backend="shmem"``.
SHMEM_FAMILIES = {
    "shmem-fence": _t_shmem_fence,
    "shmem-relay": _t_shmem_relay,
}

#: Collective fault families (ISSUE 8): the rendezvous/cardinality bugs
#: specific to first-class ``coll`` statements.  Separate from the pinned
#: default battery for the same reason as :data:`SHMEM_FAMILIES`.
COLLECTIVE_FAMILIES = {
    "coll-gather": _t_coll_gather,
    "coll-reduce": _t_coll_reduce,
}


# --------------------------------------------------------------------- #
# battery assembly
# --------------------------------------------------------------------- #


def generate_battery(
    count: int, base_seed: int = 0, families: dict | None = None
) -> list[FuzzProgram]:
    """The first ``count`` programs of the deterministic battery.

    Template instances round-robin over ``families`` (default: the
    message-passing :data:`FAMILIES`; pass :data:`SHMEM_FAMILIES` for the
    shared-address fault battery); after each good program come up to
    three seeded mutants of it.  A prefix of a larger battery is always a
    smaller battery: ``generate_battery(50, s)`` is the first 50 entries
    of ``generate_battery(200, s)``.
    """
    families = FAMILIES if families is None else families
    programs: list[FuzzProgram] = []
    names = sorted(families)
    seed = base_seed
    while len(programs) < count:
        name = names[seed % len(names)]
        # Seed with a string: random.Random hashes tuples with the
        # process-randomized hash(), but strings go through sha512.
        rng = random.Random(f"fuzz:{seed}:{name}")
        lines, nprocs = families[name](rng)
        programs.append(FuzzProgram(name, seed, nprocs, None, _render(lines)))
        sites = _mutations(lines)
        for idx, mutation in rng.sample(sites, min(3, len(sites))):
            programs.append(FuzzProgram(
                name, seed, nprocs, mutation, _apply(lines, idx, mutation)
            ))
        seed += 1
    return programs[:count]


def _main() -> int:
    import argparse
    import pathlib

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--count", type=int, default=10)
    ap.add_argument("--base-seed", type=int, default=0)
    ap.add_argument("--out", type=pathlib.Path, default=None,
                    help="write one .xdp file per program instead of stdout")
    args = ap.parse_args()
    battery = generate_battery(args.count, args.base_seed)
    if args.out is None:
        for fp in battery:
            print(f"// {fp.label}")
            print(fp.source)
    else:
        args.out.mkdir(parents=True, exist_ok=True)
        for i, fp in enumerate(battery):
            name = fp.label.replace("/", "_").replace("=", "")
            (args.out / f"{i:04d}_{name}.xdp").write_text(
                f"// {fp.label}\n" + fp.source
            )
        print(f"wrote {len(battery)} programs to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
