"""Seeded random-program generation for differential verifier testing."""
