"""Unit tests for the compile-time analyses: constant evaluation, layouts,
ownership enumeration, reference sets, and inline owner expressions."""

import pytest

from repro.core.analysis import (
    CompilerContext,
    ConstEnv,
    OwnershipAnalysis,
    const_eval,
    resolve_section_const,
    stmt_refsets,
)
from repro.core.analysis.consteval import program_constants
from repro.core.analysis.layouts import (
    build_layouts,
    build_segmentation,
    decl_index_space,
    split_dist_spec,
)
from repro.core.analysis.ownerexpr import owner_pid1_expr
from repro.core.errors import CompilationError
from repro.core.ir.nodes import ArrayDecl, ArrayRef, Index, VarRef
from repro.core.ir.parser import parse_expression, parse_program, parse_statements
from repro.core.sections import section
from repro.distributions import ProcessorGrid


class TestConstEval:
    ENV = ConstEnv(nprocs=4, scalars={"n": 8, "k": 3})

    @pytest.mark.parametrize("text,want", [
        ("1 + 2 * 3", 7),
        ("n - k", 5),
        ("n / k", 2),           # integer division
        ("n % k", 2),
        ("min(n, k) + max(1, 2)", 5),
        ("n == 8 and k < 4", True),
        ("n != 8 or k >= 3", True),
        ("not (n == 8)", False),
        ("-k", -3),
        ("nprocs", 4),
        ("MAXINT > 0", True),
        ("MININT < 0", True),
    ])
    def test_constants(self, text, want):
        assert const_eval(parse_expression(text), self.ENV) == want

    def test_unknown_scalar_is_none(self):
        assert const_eval(parse_expression("m + 1"), self.ENV) is None

    def test_mypid_needs_pin(self):
        e = parse_expression("mypid * 2")
        assert const_eval(e, self.ENV) is None
        assert const_eval(e, self.ENV.at_pid(3)) == 6

    def test_short_circuit_hides_unknowns(self):
        assert const_eval(parse_expression("false and m"), self.ENV) is False
        assert const_eval(parse_expression("true or m"), self.ENV) is True
        assert const_eval(parse_expression("true and m"), self.ENV) is None

    def test_division_by_zero_is_none(self):
        assert const_eval(parse_expression("1 / 0"), self.ENV) is None
        assert const_eval(parse_expression("1 % 0"), self.ENV) is None

    def test_intrinsics_are_not_constant(self):
        assert const_eval(parse_expression("iown(A[1])"), self.ENV) is None

    def test_bind(self):
        env2 = self.ENV.bind(i=5)
        assert const_eval(parse_expression("i + n"), env2) == 13
        # Original env unchanged.
        assert const_eval(parse_expression("i"), self.ENV) is None

    def test_program_constants(self):
        prog = parse_program(
            "scalar a = 4\nscalar b = a * 2\nscalar c\n"
        )
        env = program_constants(prog, 2)
        assert env.scalars == {"a": 4, "b": 8}


class TestResolveSection:
    DECL = ArrayDecl("A", ((1, 8), (0, 3)), dist="(BLOCK, *)")

    def test_full_and_index(self):
        ref = parse_expression("A[*, 2]")
        env = ConstEnv(2)
        assert resolve_section_const(ref, self.DECL, env) == section((1, 8), 2)

    def test_defaults_from_bounds(self):
        ref = parse_expression("A[3:, :2]")
        env = ConstEnv(2)
        assert resolve_section_const(ref, self.DECL, env) == section((3, 8), (0, 2))

    def test_symbolic_is_none(self):
        ref = parse_expression("A[i, 0]")
        assert resolve_section_const(ref, self.DECL, ConstEnv(2)) is None
        assert resolve_section_const(
            ref, self.DECL, ConstEnv(2, {"i": 4})
        ) == section(4, 0)

    def test_empty_section_is_none(self):
        ref = parse_expression("A[5:4, *]")
        assert resolve_section_const(ref, self.DECL, ConstEnv(2)) is None

    def test_rank_mismatch(self):
        ref = parse_expression("A[1]")
        with pytest.raises(CompilationError):
            resolve_section_const(ref, self.DECL, ConstEnv(2))


class TestLayouts:
    def test_split_dist_spec(self):
        assert split_dist_spec("(BLOCK, CYCLIC(2))") == ["BLOCK", "CYCLIC(2)"]
        assert split_dist_spec("(*, BLOCK)") == ["*", "BLOCK"]
        assert split_dist_spec("( CYCLIC )") == ["CYCLIC"]
        with pytest.raises(CompilationError):
            split_dist_spec("BLOCK")

    def test_decl_index_space(self):
        d = ArrayDecl("A", ((1, 4), (-2, 2)), dist="(BLOCK, BLOCK)")
        assert decl_index_space(d) == section((1, 4), (-2, 2))

    def test_default_segment_shape_is_whole_piece(self):
        d = ArrayDecl("A", ((1, 8),), dist="(BLOCK)")
        seg = build_segmentation(d, ProcessorGrid((2,)))
        assert seg.segment_shape == (4,)
        assert seg.segment_count(0) == 1

    def test_universal_has_no_layout(self):
        d = ArrayDecl("W", ((1, 4),), universal=True)
        with pytest.raises(CompilationError):
            build_segmentation(d, ProcessorGrid((2,)))

    def test_build_layouts_skips_universal(self):
        prog = parse_program(
            "array A[1:8] dist (BLOCK)\narray W[1:4] universal\n"
        )
        layouts = build_layouts(prog, ProcessorGrid((2,)))
        assert set(layouts) == {"A"}


def make_ctx(src: str, nprocs: int = 4) -> CompilerContext:
    return CompilerContext.create(parse_program(src), nprocs)


class TestOwnershipAnalysis:
    SRC = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
array W[1:8] universal
scalar n = 8
"""

    def test_owner_of_element(self):
        ctx = make_ctx(self.SRC)
        oa = OwnershipAnalysis(ctx)
        ref = parse_expression("A[i]")
        assert oa.owner_of(ref, ctx.consts.bind(i=1)) == 0
        assert oa.owner_of(ref, ctx.consts.bind(i=8)) == 3
        assert oa.owner_of(ref, ctx.consts) is None  # i unknown

    def test_owner_of_spanning_section_none(self):
        ctx = make_ctx(self.SRC)
        oa = OwnershipAnalysis(ctx)
        assert oa.owner_of(parse_expression("A[1:4]"), ctx.consts) is None
        assert oa.owner_of(parse_expression("A[1:2]"), ctx.consts) == 0

    def test_universal_has_no_owner(self):
        ctx = make_ctx(self.SRC)
        oa = OwnershipAnalysis(ctx)
        assert oa.owner_of(parse_expression("W[1]"), ctx.consts) is None

    def test_owned_by(self):
        ctx = make_ctx(self.SRC)
        oa = OwnershipAnalysis(ctx)
        ref = parse_expression("B[3]")
        assert oa.owned_by(ref, ctx.consts, 2) is True  # cyclic: 3 -> pid 2
        assert oa.owned_by(ref, ctx.consts, 0) is False

    def test_iteration_values(self):
        ctx = make_ctx(self.SRC)
        oa = OwnershipAnalysis(ctx)
        (loop,) = parse_statements("do i = 1, n\nenddo").stmts
        assert oa.iteration_values(loop, ctx.consts) == list(range(1, 9))
        (down,) = parse_statements("do i = 8, 2, -2\nenddo").stmts
        assert oa.iteration_values(down, ctx.consts) == [8, 6, 4, 2]
        (sym,) = parse_statements("do i = 1, m\nenddo").stmts
        assert oa.iteration_values(sym, ctx.consts) is None

    def test_same_owner_forall(self):
        ctx = make_ctx(self.SRC)
        oa = OwnershipAnalysis(ctx)
        (loop,) = parse_statements("do i = 1, n\nenddo").stmts
        a = parse_expression("A[i]")
        a2 = parse_expression("A[i]")
        b = parse_expression("B[i]")
        assert oa.same_owner_forall(a, a2, [loop], ctx.consts)
        assert not oa.same_owner_forall(a, b, [loop], ctx.consts)

    def test_owner_table(self):
        ctx = make_ctx(self.SRC)
        oa = OwnershipAnalysis(ctx)
        (loop,) = parse_statements("do i = 1, 4\nenddo").stmts
        table = oa.owner_table(parse_expression("B[i]"), [loop], ctx.consts)
        assert table == {(1,): 0, (2,): 1, (3,): 2, (4,): 3}

    def test_nested_iteration_space(self):
        ctx = make_ctx(self.SRC)
        oa = OwnershipAnalysis(ctx)
        outer, = parse_statements("do i = 1, 2\nenddo").stmts
        inner, = parse_statements("do j = 1, i\nenddo").stmts
        space = oa.iteration_space([outer, inner], ctx.consts)
        assert space == [{"i": 1, "j": 1}, {"i": 2, "j": 1}, {"i": 2, "j": 2}]


class TestRefSets:
    SRC = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (BLOCK) seg (1)
scalar n = 8
"""

    def test_assignment_sets(self):
        ctx = make_ctx(self.SRC)
        (s,) = parse_statements("A[1] = B[2] + 1").stmts
        rs = stmt_refsets(s, ctx, ctx.consts)
        assert ("A", section(1)) in rs.writes
        assert ("B", section(2)) in rs.reads
        assert not rs.unknown

    def test_ownership_send_sets(self):
        ctx = make_ctx(self.SRC)
        (s,) = parse_statements("A[3] -=>").stmts
        rs = stmt_refsets(s, ctx, ctx.consts)
        assert ("A", section(3)) in rs.released
        assert ("A", section(3)) in rs.reads  # value ships too

    def test_ownership_recv_sets(self):
        ctx = make_ctx(self.SRC)
        (s,) = parse_statements("A[3] <=-").stmts
        rs = stmt_refsets(s, ctx, ctx.consts)
        assert ("A", section(3)) in rs.acquired
        assert ("A", section(3)) in rs.writes

    def test_guard_queries(self):
        ctx = make_ctx(self.SRC)
        (s,) = parse_statements("iown(A[1:2]) : { B[1] = 0 }").stmts
        rs = stmt_refsets(s, ctx, ctx.consts)
        assert ("A", section((1, 2))) in rs.queried
        assert ("B", section(1)) in rs.writes

    def test_unresolvable_widens_to_whole_array(self):
        ctx = make_ctx(self.SRC)
        (s,) = parse_statements("A[m] = 0").stmts
        rs = stmt_refsets(s, ctx, ctx.consts)
        assert ("A", section((1, 8))) in rs.writes

    def test_loop_enumerated(self):
        ctx = make_ctx(self.SRC)
        (s,) = parse_statements("do i = 1, 3\n  A[i] = 0\nenddo").stmts
        rs = stmt_refsets(s, ctx, ctx.consts)
        assert len(rs.writes) == 3

    def test_symbolic_loop_unknown(self):
        ctx = make_ctx(self.SRC)
        (s,) = parse_statements("do i = 1, m\n  A[1] = 0\nenddo").stmts
        rs = stmt_refsets(s, ctx, ctx.consts)
        assert rs.unknown

    def test_conflicts(self):
        ctx = make_ctx(self.SRC)
        (w1,) = parse_statements("A[1] = 0").stmts
        (w2,) = parse_statements("A[1] = 1").stmts
        (w3,) = parse_statements("A[2] = 1").stmts
        (rel,) = parse_statements("A[1] =>").stmts
        (q,) = parse_statements("iown(A[1]) : { B[5] = 0 }").stmts
        rs = lambda s: stmt_refsets(s, ctx, ctx.consts)
        assert rs(w1).conflicts_with(rs(w2))
        assert not rs(w1).conflicts_with(rs(w3))
        assert rs(rel).conflicts_with(rs(q))      # query vs ownership move
        assert rs(rel).conflicts_with(rs(w1))     # access vs ownership move


class TestOwnerExpr:
    def check(self, dist: str, nprocs: int, n: int = 12):
        src = f"array A[1:{n}] dist {dist} seg (1)\n"
        ctx = make_ctx(src, nprocs)
        decl = ctx.array_decl("A")
        layout = ctx.layouts["A"]
        ref = ArrayRef("A", (Index(VarRef("i")),))
        expr = owner_pid1_expr(decl, layout, ref)
        assert expr is not None
        for i in range(1, n + 1):
            got = const_eval(expr, ConstEnv(nprocs, {"i": i}))
            want = layout.distribution.owner((i,)) + 1
            assert got == want, (dist, i, got, want)

    def test_block(self):
        self.check("(BLOCK)", 4)
        self.check("(BLOCK)", 3)

    def test_cyclic(self):
        self.check("(CYCLIC)", 4)

    def test_block_cyclic(self):
        self.check("(CYCLIC(2))", 3)

    def test_two_dimensional(self):
        src = "array A[1:4,1:6] dist (BLOCK, CYCLIC) seg (1,1)\n"
        prog = parse_program(src)
        from repro.distributions import ProcessorGrid

        ctx = CompilerContext.create(prog, 4, ProcessorGrid((2, 2)))
        decl = ctx.array_decl("A")
        layout = ctx.layouts["A"]
        ref = ArrayRef("A", (Index(VarRef("i")), Index(VarRef("j"))))
        expr = owner_pid1_expr(decl, layout, ref)
        for i in range(1, 5):
            for j in range(1, 7):
                got = const_eval(expr, ConstEnv(4, {"i": i, "j": j}))
                want = layout.distribution.owner((i, j)) + 1
                assert got == want

    def test_section_ref_unbindable(self):
        ctx = make_ctx("array A[1:8] dist (BLOCK) seg (1)\n")
        ref = parse_expression("A[1:4]")
        assert owner_pid1_expr(ctx.array_decl("A"), ctx.layouts["A"], ref) is None
