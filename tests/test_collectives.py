"""Tests for the collective communication subsystem (ISSUE 8).

Covers the IL surface (parse/print/verify), the backend schedule
families and their bit-identity guarantee (native vs the point-to-point
desugaring, msg vs shmem, VM vs interpreter), the memory-bounded
redistribution planner, and the analytic cost model's collective terms.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen import lower
from repro.core.collectives.desugar import desugar_program, static_eval
from repro.core.collectives.planner import (
    dist_from_spec, plan_bounded_redistribution,
)
from repro.core.collectives.schedule import (
    CollInstance, Fence, LocalCopy, LocalReduce, RecvChunk, SendChunk,
    build_instance, collective_ops, group_members, reduce_order,
)
from repro.core.errors import (
    DistributionError, ProtocolError, VerificationError, XDPError,
)
from repro.core.interp import Interpreter
from repro.core.ir.nodes import CollectiveStmt, Full, Index, Range
from repro.core.ir.parser import parse_program
from repro.core.ir.printer import print_program
from repro.core.ir.verify import verify_program
from repro.core.ir.visitor import walk_stmts
from repro.core.sections import Section, Triplet, section
from repro.distributions import ProcessorGrid, plan_redistribution
from repro.machine import MachineModel

# One program exercising every collective op at P=4; every array ends up
# fully determined, so cross-path runs must agree bit-for-bit.
COLL_SRC = """
array A[1:8] dist (BLOCK) seg (1)
array W[1:4, 1:8] dist (BLOCK, *) seg (1, 8)
array D[1:4, 1:8] dist (BLOCK, *) seg (1, 8)
array T[1:4, 1:8] dist (BLOCK, *) seg (1, 8)
array V[1:4, 1:8] dist (BLOCK, *) seg (1, 8)
array S[1:8] dist (BLOCK) seg (1)
array SCR[1:4, 1:2] dist (BLOCK, *) seg (1, 2)

true : {
  A[2*mypid-1] = mypid
  A[2*mypid] = mypid + 1
  do j = 1, 8
    W[mypid, j] = 0
    D[mypid, j] = mypid + j
    T[mypid, j] = 0
    V[mypid, j] = mypid * j
  enddo
  S[2*mypid-1] = 0
  S[2*mypid] = 0
  SCR[mypid, 1] = 0
  SCR[mypid, 2] = 0
  coll broadcast(d in 1:4, root 1) A[1:2] into W[d, 1:2]
  coll allgather(g, d in 1:4) A[2*g-1:2*g] into W[d, 2*g-1:2*g]
  coll all_to_all(g, d in 1:4) D[g, 2*d-1:2*d] into T[d, 2*g-1:2*g]
  coll reduce_scatter(g, d in 1:4, op +) V[g, 2*d-1:2*d] into S[2*d-1:2*d] via SCR[d, 1:2]
}
"""

#: The arrays whose final bytes the bit-identity guarantee covers: every
#: collective source and destination.  SCR is deliberately absent — a
#: reduce_scatter's scratch holds schedule-dependent residue (the staged
#: ring and the flat gather stage different partials through it).
ARRAYS = ("A", "W", "D", "T", "V", "S")


def _run_all_arrays(src: str, nprocs: int, *, path="vm", backend=None,
                    collectives="native"):
    program = parse_program(src)
    if path == "vm":
        runner = lower(program, nprocs, backend=backend,
                       collectives=collectives)
    else:
        runner = Interpreter(program, nprocs, backend=backend)
    runner.run()
    return {name: runner.read_global(name) for name in ARRAYS}


# --------------------------------------------------------------------- #
# schedule building blocks
# --------------------------------------------------------------------- #


class TestScheduleUnits:
    def test_group_members(self):
        assert group_members(1, 4, 1, 4) == (1, 2, 3, 4)
        assert group_members(1, 4, 2, 4) == (1, 3)
        assert group_members(4, 1, -1, 4) == (4, 3, 2, 1)
        with pytest.raises(XDPError):
            group_members(1, 4, 0, 4)
        with pytest.raises(XDPError):
            group_members(2, 1, 1, 4)
        with pytest.raises(XDPError):
            group_members(1, 5, 1, 4)

    def test_reduce_order_is_cyclic_after_self(self):
        members = (1, 2, 3, 4)
        assert reduce_order(members, 1) == [2, 3, 4]
        assert reduce_order(members, 3) == [4, 1, 2]
        # own contribution is combined last, outside the list
        assert all(d not in reduce_order(members, d) for d in members)

    def test_chunk_size_validation(self):
        one = Section((Triplet(1, 1, 1),))
        two = Section((Triplet(1, 2, 1),))
        with pytest.raises(ProtocolError, match="cardinality"):
            RecvChunk("A", one, "W", two)
        with pytest.raises(ProtocolError, match="cardinality"):
            LocalCopy("A", two, "W", one)
        with pytest.raises(ProtocolError, match="cardinality"):
            LocalReduce("C", two, "S", one, "+")
        # matching sizes construct fine
        RecvChunk("A", one, "W", one)

    def _instance(self, src: str) -> CollInstance:
        program = parse_program(src)
        stmt = next(s for s in walk_stmts(program.body)
                    if isinstance(s, CollectiveStmt))
        decls = {d.name: d for d in program.array_decls()}

        def resolve(ref, bindings):
            dims = []
            for i, s in enumerate(ref.subs):
                if isinstance(s, Index):
                    v = static_eval(s.expr, 4, dict(bindings))
                    dims.append(Triplet(v, v, 1))
                elif isinstance(s, Range):
                    lo = static_eval(s.lo, 4, dict(bindings))
                    hi = static_eval(s.hi, 4, dict(bindings))
                    dims.append(Triplet(lo, hi, 1))
                else:
                    assert isinstance(s, Full)
                    lo, hi = decls[ref.var].bounds[i]
                    dims.append(Triplet(lo, hi, 1))
            return ref.var, Section(tuple(dims))

        return build_instance(stmt, 4, lambda e: static_eval(e, 4), resolve)

    def test_staged_allgather_is_a_ring(self):
        inst = self._instance(
            "array A[1:4] dist (BLOCK) seg (1)\n"
            "array W[1:16] dist (BLOCK) seg (4)\n\n"
            "coll allgather(g, d in 1:4) A[g] into W[(d-1)*4+g]\n"
        )
        ops = list(collective_ops(inst, 2, "staged"))
        sends = [o for o in ops if isinstance(o, SendChunk)]
        recvs = [o for o in ops if isinstance(o, RecvChunk)]
        # ring: P-1 hops, each a single-destination send + one receive
        assert len(sends) == 3 and len(recvs) == 3
        assert all(len(s.dests) == 1 for s in sends)
        flat_sends = [o for o in collective_ops(inst, 2, "flat")
                      if isinstance(o, SendChunk)]
        # flat: one bulk send to everyone else
        assert len(flat_sends) == 1 and len(flat_sends[0].dests) == 3

    def test_in_place_collective_falls_back_to_flat(self):
        inst = self._instance(
            "array A[1:16] dist (BLOCK) seg (4)\n\n"
            "coll broadcast(d in 1:4, root 1) A[1:4] into A[(d-1)*4+1:d*4]\n"
        )
        staged = list(collective_ops(inst, 2, "staged"))
        flat = list(collective_ops(inst, 2, "flat"))
        assert staged == flat  # src var == dst var forces the flat family

    def test_every_member_ends_with_fences(self):
        inst = self._instance(
            "array A[1:4] dist (BLOCK) seg (1)\n"
            "array W[1:16] dist (BLOCK) seg (4)\n\n"
            "coll allgather(g, d in 1:4) A[g] into W[(d-1)*4+g]\n"
        )
        for me in (1, 2, 3, 4):
            for style in ("flat", "staged"):
                ops = list(collective_ops(inst, me, style))
                assert any(isinstance(o, Fence) for o in ops)


# --------------------------------------------------------------------- #
# IL surface
# --------------------------------------------------------------------- #


class TestParsePrintVerify:
    def test_printer_round_trip(self):
        p1 = parse_program(COLL_SRC)
        text = print_program(p1)
        assert "coll broadcast(d in 1:4, root 1)" in text
        assert "coll reduce_scatter(g, d in 1:4, op +)" in text
        assert "via" in text and "into" in text
        p2 = parse_program(text)
        assert print_program(p2) == text

    def test_verify_accepts_the_suite_program(self):
        verify_program(parse_program(COLL_SRC))

    @pytest.mark.parametrize("line,msg", [
        ("coll broadcast(d in 1:4) A[1:2] into W[d, 1:2]", "root"),
        ("coll allgather(g, d in 1:4, root 2) A[2*g-1:2*g] "
         "into W[d, 2*g-1:2*g]", "root"),
        ("coll allgather(g, d in 1:4, op +) A[2*g-1:2*g] "
         "into W[d, 2*g-1:2*g]", "'op'"),
        ("coll reduce_scatter(g, d in 1:4, op +) A[1:2] into W[d, 1:2]",
         "via"),
        ("coll broadcast(d in 1:mypid, root 1) A[1:2] into W[d, 1:2]",
         "mypid"),
        ("coll allgather(d in 1:4) A[1:2] into W[d, 1:2]", "binder"),
    ])
    def test_structural_rejections(self, line, msg):
        src = COLL_SRC.replace(
            "coll broadcast(d in 1:4, root 1) A[1:2] into W[d, 1:2]", line
        )
        with pytest.raises(VerificationError, match=msg):
            verify_program(parse_program(src))

    def test_unknown_reduce_op_rejected_at_parse(self):
        from repro.core.errors import ParseError

        with pytest.raises(ParseError, match="reduce op"):
            parse_program(COLL_SRC.replace("op +", "op -"))


# --------------------------------------------------------------------- #
# execution: bit-identity across backends, lowerings and engines
# --------------------------------------------------------------------- #


class TestBitIdentity:
    def test_all_paths_bit_identical(self):
        reference = _run_all_arrays(COLL_SRC, 4, path="interp")
        paths = [
            dict(path="vm", backend="msg", collectives="native"),
            dict(path="vm", backend="msg", collectives="p2p"),
            dict(path="vm", backend="shmem", collectives="native"),
            dict(path="vm", backend="shmem", collectives="p2p"),
        ]
        for kw in paths:
            got = _run_all_arrays(COLL_SRC, 4, **kw)
            for name in ARRAYS:
                assert got[name].tobytes() == reference[name].tobytes(), (
                    kw, name
                )

    def test_reference_values(self):
        got = _run_all_arrays(COLL_SRC, 4, path="interp")
        # allgather overwrote the broadcast chunk: W rows all equal A
        a = np.array([1, 2, 2, 3, 3, 4, 4, 5], dtype=float)
        assert np.array_equal(got["A"], a)
        assert np.array_equal(got["W"], np.tile(a, (4, 1)))
        # all_to_all is a blocked transpose of D
        d = np.array([[p + j for j in range(1, 9)] for p in range(1, 5)],
                     dtype=float)
        t = np.zeros_like(d)
        for g in range(4):
            for dd in range(4):
                t[dd, 2 * g:2 * g + 2] = d[g, 2 * dd:2 * dd + 2]
        assert np.array_equal(got["T"], t)
        # reduce_scatter summed V columns onto their owners
        v = np.array([[p * j for j in range(1, 9)] for p in range(1, 5)],
                     dtype=float)
        assert np.array_equal(got["S"], v.sum(axis=0))

    def test_desugared_program_has_no_collectives_and_matches(self):
        program = parse_program(COLL_SRC)
        flat = desugar_program(program, 4)
        assert not any(isinstance(s, CollectiveStmt)
                       for s in walk_stmts(flat.body))
        native = _run_all_arrays(COLL_SRC, 4, path="interp")
        it = Interpreter(flat, 4)
        it.run()
        for name in ARRAYS:
            assert it.read_global(name).tobytes() == native[name].tobytes()

    def test_in_place_broadcast_runs_on_both_backends(self):
        src = (
            "array A[1:16] dist (BLOCK) seg (4)\n\n"
            "true : {\n"
            "  do j = 1, 4\n"
            "    A[(mypid-1)*4+j] = mypid * 10 + j\n"
            "  enddo\n"
            "  coll broadcast(d in 1:4, root 1) A[1:4] "
            "into A[(d-1)*4+1:d*4]\n"
            "}\n"
        )
        want = np.tile(np.arange(11.0, 15.0), 4)
        for backend in ("msg", "shmem"):
            runner = lower(parse_program(src), 4, backend=backend)
            runner.run()
            assert np.array_equal(runner.read_global("A"), want), backend


# --------------------------------------------------------------------- #
# the memory-bounded redistribution planner
# --------------------------------------------------------------------- #


def _fft_pair(n=8, nprocs=4):
    bounds = ((1, n), (1, n), (1, n))
    grid = ProcessorGrid((nprocs,))
    return (
        dist_from_spec("(*, *, BLOCK)", bounds, grid),
        dist_from_spec("(*, BLOCK, *)", bounds, grid),
    )


class TestPlanner:
    def test_fft_repartition_meets_the_50pct_bar(self):
        src, dst = _fft_pair()
        sched = plan_bounded_redistribution(src, dst, max_temp_frac=0.25)
        s = sched.summary()
        assert s["peak_temp_bytes"] <= s["budget_bytes"]
        assert s["peak_vs_naive"] <= 0.5  # the ISSUE acceptance bar
        assert s["rounds"] >= 2

    def test_rounds_partition_the_direct_plan(self):
        src, dst = _fft_pair()
        sched = plan_bounded_redistribution(src, dst, max_temp_frac=0.25)
        direct = plan_redistribution(src, dst)

        def cover(moves):
            out = set()
            for m in moves:
                for idx in m.section:
                    out.add((m.src, m.dst, idx))
            return out

        assert cover(sched.all_moves()) == cover(
            m for m in direct.moves if m.src != m.dst
        )

    def test_frac_validation(self):
        src, dst = _fft_pair()
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(DistributionError):
                plan_bounded_redistribution(src, dst, max_temp_frac=bad)

    def test_identity_redistribution_is_empty(self):
        src, _ = _fft_pair()
        sched = plan_bounded_redistribution(src, src, max_temp_frac=0.5)
        assert sched.round_count == 0
        assert sched.peak_temp_bytes == 0

    def test_schedule_statements_execute_to_the_same_array(self):
        n, nprocs = 8, 4
        grid = ProcessorGrid((nprocs,))
        bounds = ((1, n), (1, n))
        src = dist_from_spec("(BLOCK, *)", bounds, grid)
        dst = dist_from_spec("(*, BLOCK)", bounds, grid)
        sched = plan_bounded_redistribution(src, dst, max_temp_frac=0.25)
        from repro.core.ir.nodes import ArrayDecl, Block as IRBlock, Program

        decl = ArrayDecl("A", ((1, n), (1, n)), dist="(BLOCK, *)",
                         segment_shape=(n // nprocs, n))
        prog = Program((decl,), IRBlock(tuple(sched.statements("A"))))
        it = Interpreter(prog, nprocs, model=MachineModel())
        a0 = np.arange(64.0).reshape(n, n)
        it.write_global("A", a0)
        it.run()
        assert np.array_equal(it.read_global("A"), a0)
        for pid in range(nprocs):
            for sec in dst.owned_sections(pid):
                assert it.engine.symtabs[pid].iown("A", sec)


SPECS_1D = ("(BLOCK)", "(CYCLIC)")
SPECS_2D = ("(BLOCK, *)", "(*, BLOCK)", "(CYCLIC, *)", "(*, CYCLIC)")


class TestPlannerProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        nprocs=st.integers(2, 4),
        mult=st.integers(1, 3),
        src_spec=st.sampled_from(SPECS_2D),
        dst_spec=st.sampled_from(SPECS_2D),
        frac=st.floats(0.05, 1.0),
    )
    def test_peak_never_exceeds_budget(self, nprocs, mult, src_spec,
                                       dst_spec, frac):
        n = nprocs * mult
        bounds = ((1, n), (1, n))
        grid = ProcessorGrid((nprocs,))
        src = dist_from_spec(src_spec, bounds, grid)
        dst = dist_from_spec(dst_spec, bounds, grid)
        sched = plan_bounded_redistribution(src, dst, max_temp_frac=frac)
        assert sched.peak_temp_bytes <= sched.budget_bytes
        for r in sched.rounds:
            for v in r.incoming_bytes(sched.elem_bytes).values():
                assert v <= sched.budget_bytes
            for v in r.outgoing_bytes(sched.elem_bytes).values():
                assert v <= sched.budget_bytes

    @settings(max_examples=40, deadline=None)
    @given(
        nprocs=st.integers(2, 4),
        mult=st.integers(1, 4),
        src_spec=st.sampled_from(SPECS_1D),
        dst_spec=st.sampled_from(SPECS_1D),
        frac=st.floats(0.05, 1.0),
    )
    def test_rounds_compose_to_direct_redistribution(self, nprocs, mult,
                                                     src_spec, dst_spec,
                                                     frac):
        n = nprocs * mult
        grid = ProcessorGrid((nprocs,))
        src = dist_from_spec(src_spec, ((1, n),), grid)
        dst = dist_from_spec(dst_spec, ((1, n),), grid)
        sched = plan_bounded_redistribution(src, dst, max_temp_frac=frac)
        direct = plan_redistribution(src, dst)

        def cover(moves):
            out = {}
            for m in moves:
                for idx in m.section:
                    key = (m.src, m.dst, idx)
                    out[key] = out.get(key, 0) + 1
            return out

        got = cover(sched.all_moves())
        want = cover(m for m in direct.moves if m.src != m.dst)
        assert got == want  # every element moved exactly once, same edges


# --------------------------------------------------------------------- #
# analytic cost model
# --------------------------------------------------------------------- #


class TestCostModel:
    @pytest.mark.parametrize("backend", ["msg", "shmem"])
    def test_collective_calibration(self, backend):
        from repro.tune.cost import CALIBRATION_RTOL, estimate_program

        program = parse_program(COLL_SRC)
        est = estimate_program(program, 4, backend=backend)
        runner = lower(program, 4, backend=backend, collectives="native")
        real = runner.run()
        assert est.makespan == pytest.approx(
            real.makespan, rel=CALIBRATION_RTOL
        )
        assert est.total_messages == real.total_messages
        assert est.total_bytes == real.total_bytes

    def test_collective_cost_closed_form(self):
        from repro.tune.cost import collective_cost

        for op in ("broadcast", "allgather", "all_to_all",
                   "reduce_scatter"):
            for backend in ("msg", "shmem"):
                assert collective_cost(op, 1, 64, backend=backend) == 0.0
                c4 = collective_cost(op, 4, 64, backend=backend)
                c16 = collective_cost(op, 16, 64, backend=backend)
                assert 0.0 < c4 < c16, (op, backend)
        # reduction pays the combine on top of the gather traffic
        assert collective_cost("reduce_scatter", 8, 64, backend="msg") > \
            collective_cost("allgather", 8, 64, backend="msg")
        # both schedule families priced, and they differ
        staged = collective_cost("broadcast", 8, 64, backend="msg",
                                 style="staged")
        flat = collective_cost("broadcast", 8, 64, backend="msg",
                               style="flat")
        assert staged != flat

    def test_gemm_flops_parity_with_kernel(self):
        from repro.core.kernels import default_registry
        from repro.tune.cost import KERNEL_FLOPS

        kernel = default_registry().get("gemm_acc").fn
        for m, k, n in ((2, 8, 8), (4, 4, 4), (1, 8, 2)):
            a = np.ones((m, k))
            b = np.ones((k, n))
            c = np.zeros((m, n))
            real = kernel(c, a, b)
            est = KERNEL_FLOPS["gemm_acc"]((a.size, b.size, c.size), ())
            assert real == est == 2 * m * n * k
