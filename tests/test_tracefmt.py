"""Chrome trace-event export (repro.report.tracefmt)."""

import json

import numpy as np
import pytest

from repro.apps.jacobi import jacobi_source
from repro.core.codegen import lower
from repro.machine.stats import TraceEvent
from repro.report import chrome_trace, dump_chrome_trace, load_chrome_trace


@pytest.fixture(scope="module")
def engine_events():
    runner = lower(jacobi_source(16, 4, 2, "halo"), 4, trace=True)
    runner.write_global("A", np.arange(16, dtype=float))
    runner.write_global("B", np.zeros(16))
    stats = runner.run()
    assert stats.trace
    return stats.trace


def _time_sorted(events):
    # The export orders by virtual time (stable); the engine stamps
    # completion events with future times, so the raw list is unsorted.
    return sorted(events, key=lambda e: e.time)


class TestRoundTrip:
    def test_lossless_on_engine_trace(self, engine_events):
        doc = chrome_trace(engine_events)
        assert load_chrome_trace(doc) == _time_sorted(engine_events)

    def test_lossless_through_json_string(self, engine_events):
        text = json.dumps(chrome_trace(engine_events))
        assert load_chrome_trace(text) == _time_sorted(engine_events)

    def test_lossless_through_file(self, engine_events, tmp_path):
        path = dump_chrome_trace(engine_events, tmp_path / "trace.json")
        assert path.exists()
        assert load_chrome_trace(path) == _time_sorted(engine_events)

    def test_handcrafted_events(self):
        events = [
            TraceEvent(time=0.0, pid=0, kind="send", detail="A[1:2] -> P2"),
            TraceEvent(time=5.5, pid=1, kind="recv", detail=""),
        ]
        assert load_chrome_trace(chrome_trace(events)) == events


class TestDocumentShape:
    def test_time_nondecreasing_per_pid(self, engine_events):
        doc = chrome_trace(engine_events)
        last: dict[int, float] = {}
        for e in doc["traceEvents"]:
            if e["ph"] != "i":
                continue
            assert e["ts"] >= last.get(e["pid"], float("-inf"))
            last[e["pid"]] = e["ts"]
        assert last  # saw at least one instant event

    def test_process_metadata_rows(self, engine_events):
        doc = chrome_trace(engine_events)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert {e["pid"] for e in meta} == pids
        for e in meta:
            assert e["name"] == "process_name"
            assert e["args"]["name"] == f"P{e['pid']}"

    def test_pids_are_one_based(self, engine_events):
        doc = chrome_trace(engine_events)
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert min(pids) >= 1
        assert pids == {p + 1 for p in {ev.pid for ev in engine_events}}

    def test_document_is_json_serializable(self, engine_events):
        json.dumps(chrome_trace(engine_events))
