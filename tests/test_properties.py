"""Property-based tests (hypothesis) for core invariants:

* triplet/section algebra agrees with explicit enumeration;
* distributions partition the index space exactly;
* segmentations tile each local partition exactly;
* redistribution plans conserve elements;
* the parser/printer round-trips;
* translation (both strategies), optimization, and the VM path all
  compute the same result as the sequential semantics.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.sections import (
    Section, Triplet, group_into_triplets, section_difference, triplet,
)
from repro.distributions import (
    Block, BlockCyclic, Collapsed, Cyclic, Distribution, ProcessorGrid,
    Segmentation, plan_redistribution,
)
from repro.core.sections import section

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

triplets = st.builds(
    Triplet,
    st.integers(-30, 30),
    st.integers(-30, 60),
    st.integers(1, 7),
).filter(lambda t: True)


@st.composite
def valid_triplets(draw):
    lo = draw(st.integers(-30, 30))
    size = draw(st.integers(1, 20))
    step = draw(st.integers(1, 7))
    return Triplet(lo, lo + (size - 1) * step, step)


@st.composite
def sections_st(draw, rank=None):
    r = rank if rank is not None else draw(st.integers(1, 3))
    return Section(tuple(draw(valid_triplets()) for _ in range(r)))


class TestTripletProperties:
    @given(valid_triplets(), valid_triplets())
    def test_intersection_matches_enumeration(self, a, b):
        inter = a.intersect(b)
        expected = sorted(set(a) & set(b))
        if inter is None:
            assert expected == []
        else:
            assert list(inter) == expected

    @given(valid_triplets(), valid_triplets())
    def test_intersection_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(valid_triplets())
    def test_self_intersection_identity(self, a):
        assert a.intersect(a) == a

    @given(valid_triplets(), valid_triplets())
    def test_contains_triplet_matches_sets(self, a, b):
        assert a.contains_triplet(b) == (set(b) <= set(a))

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=30, unique=True))
    def test_group_into_triplets_partition(self, members):
        members = sorted(members)
        groups = group_into_triplets(members)
        covered = []
        for g in groups:
            covered.extend(g)
        assert sorted(covered) == members
        # pairwise disjoint by construction of a partition
        assert len(covered) == len(set(covered))


class TestSectionProperties:
    @given(sections_st(rank=2), sections_st(rank=2))
    def test_intersection_matches_enumeration(self, a, b):
        inter = a.intersect(b)
        expected = set(a) & set(b)
        if inter is None:
            assert expected == set()
        else:
            assert set(inter) == expected

    @given(sections_st(rank=2), sections_st(rank=2))
    def test_difference_partitions(self, a, b):
        pieces = section_difference(a, b)
        pts: list[tuple[int, ...]] = []
        for p in pieces:
            pts.extend(p)
        expected = set(a) - set(b)
        assert set(pts) == expected
        assert len(pts) == len(set(pts))  # disjoint

    @given(sections_st())
    def test_size_matches_enumeration(self, s):
        assert s.size == len(list(s))


dim_specs = st.sampled_from(
    [Block(), Cyclic(), BlockCyclic(2), BlockCyclic(3)]
)


@st.composite
def distributions_st(draw):
    rank = draw(st.integers(1, 2))
    nprocs = draw(st.sampled_from([1, 2, 3, 4]))
    dims = []
    specs = []
    n_distributed = 0
    for i in range(rank):
        lo = draw(st.integers(0, 3))
        size = draw(st.integers(1, 12))
        dims.append(Triplet(lo, lo + size - 1, 1))
        collapse = draw(st.booleans()) and (n_distributed > 0 or i < rank - 1)
        if collapse:
            specs.append(Collapsed())
        else:
            specs.append(draw(dim_specs))
            n_distributed += 1
    assume(n_distributed >= 1)
    grid_shape = (nprocs,) if n_distributed == 1 else None
    if n_distributed == 2:
        # factor nprocs into two dims
        grid_shape = {1: (1, 1), 2: (2, 1), 3: (3, 1), 4: (2, 2)}[nprocs]
    return Distribution(
        Section(tuple(dims)), tuple(specs), ProcessorGrid((nprocs,)),
        dist_grid_shape=grid_shape,
    )


class TestDistributionProperties:
    @given(distributions_st())
    @settings(max_examples=60)
    def test_exact_partition(self, dist):
        counts: dict[tuple[int, ...], int] = {}
        for pid in dist.grid.pids():
            for sec in dist.owned_sections(pid):
                for pt in sec:
                    counts[pt] = counts.get(pt, 0) + 1
        all_pts = set(dist.index_space)
        assert set(counts) == all_pts
        assert all(c == 1 for c in counts.values())

    @given(distributions_st())
    @settings(max_examples=60)
    def test_owner_agrees_with_owned_sections(self, dist):
        for pid in dist.grid.pids():
            for sec in dist.owned_sections(pid):
                for pt in sec:
                    assert dist.owner(pt) == pid

    @given(distributions_st(), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=60)
    def test_segmentation_tiles_partition(self, dist, s1, s2):
        shape = (s1,) if dist.rank == 1 else (s1, s2)
        seg = Segmentation(dist, shape)
        for pid in dist.grid.pids():
            seg_pts: list[tuple[int, ...]] = []
            for s in seg.segments(pid):
                seg_pts.extend(s)
            owned_pts: list[tuple[int, ...]] = []
            for s in dist.owned_sections(pid):
                owned_pts.extend(s)
            assert sorted(seg_pts) == sorted(owned_pts)

    @given(distributions_st(), dim_specs)
    @settings(max_examples=40)
    def test_redistribution_conserves_elements(self, src, new_spec):
        specs = list(src.specs)
        # retarget the first distributed dim
        for i, s in enumerate(specs):
            if not s.collapsed:
                specs[i] = new_spec
                break
        dst = Distribution(
            src.index_space, tuple(specs), src.grid,
            dist_grid_shape=src.dist_grid_shape,
        )
        plan = plan_redistribution(src, dst)
        assert plan.total_elements_moved + plan.stationary_elements == src.index_space.size
        for m in plan.moves:
            assert m.src != m.dst
            for pt in m.section:
                assert src.owner(pt) == m.src
                assert dst.owner(pt) == m.dst


# ---------------------------------------------------------------------- #
# parser round trip
# ---------------------------------------------------------------------- #

from repro.core.ir.parser import parse_expression, parse_program
from repro.core.ir.printer import print_expr, print_program
from repro.core.ir import nodes as N


@st.composite
def exprs_st(draw, depth=0):
    if depth > 3:
        return draw(
            st.one_of(
                st.builds(N.IntConst, st.integers(-99, 99)),
                st.builds(N.VarRef, st.sampled_from(["x", "y", "n"])),
                st.just(N.Mypid()),
            )
        )
    return draw(
        st.one_of(
            st.builds(N.IntConst, st.integers(-99, 99)),
            st.builds(N.VarRef, st.sampled_from(["x", "y", "n"])),
            st.just(N.Mypid()),
            st.just(N.NumProcs()),
            st.builds(
                N.BinOp,
                st.sampled_from(["+", "-", "*", "/", "%", "min", "max"]),
                exprs_st(depth=depth + 1),
                exprs_st(depth=depth + 1),
            ),
            st.builds(
                N.UnaryOp,
                st.just("-"),
                exprs_st(depth=depth + 1).filter(
                    lambda e: not isinstance(e, (N.IntConst, N.FloatConst))
                ),
            ),
        )
    )


class TestParserRoundTrip:
    @given(exprs_st())
    @settings(max_examples=150)
    def test_expr_roundtrip(self, e):
        text = print_expr(e)
        assert parse_expression(text) == e


# ---------------------------------------------------------------------- #
# end-to-end semantics properties
# ---------------------------------------------------------------------- #

from repro.core.codegen import lower
from repro.core.interp import Interpreter
from repro.core.opt import optimize
from repro.core.translate import translate
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)

_DIST_NAMES = ["(BLOCK)", "(CYCLIC)", "(CYCLIC(2))", "(CYCLIC(3))"]


@st.composite
def elementwise_programs(draw):
    n = draw(st.integers(4, 12))
    nprocs = draw(st.sampled_from([2, 3, 4]))
    dist_a = draw(st.sampled_from(_DIST_NAMES))
    dist_b = draw(st.sampled_from(_DIST_NAMES))
    op = draw(st.sampled_from(["+", "-", "*"]))
    shift = draw(st.integers(0, 1))
    lo = 1 + shift
    hi = n - draw(st.integers(0, 1))
    assume(lo <= hi)
    src = f"""
array A[1:{n}] dist {dist_a} seg (1)
array B[1:{n}] dist {dist_b} seg (1)

do i = {lo}, {hi}
  A[i] = A[i] {op} B[i]
enddo
"""
    return src, n, nprocs, op, lo, hi


def _expected(a, b, op, lo, hi):
    out = a.copy()
    sl = slice(lo - 1, hi)
    if op == "+":
        out[sl] = a[sl] + b[sl]
    elif op == "-":
        out[sl] = a[sl] - b[sl]
    else:
        out[sl] = a[sl] * b[sl]
    return out


@st.composite
def sweep_programs(draw):
    """Repeated-sweep programs: stress cross-iteration name reuse, which is
    only well-defined with bound destinations (the translator's default)."""
    n = draw(st.integers(4, 10))
    nprocs = draw(st.sampled_from([2, 4]))
    dist_b = draw(st.sampled_from(_DIST_NAMES))
    sweeps = draw(st.integers(2, 4))
    src = f"""
array A[1:{n}] dist (BLOCK) seg (1)
array B[1:{n}] dist {dist_b} seg (1)

do t = 1, {sweeps}
  do i = 1, {n}
    A[i] = A[i] + B[i]
  enddo
  do i = 1, {n}
    B[i] = B[i] + 1
  enddo
enddo
"""
    return src, n, nprocs, sweeps


class TestSweepProperties:
    @given(sweep_programs(), st.randoms(use_true_random=False))
    @settings(max_examples=15, deadline=None)
    def test_repeated_sweeps_match_sequential(self, params, rnd):
        src, n, nprocs, sweeps = params
        prog = parse_program(src)
        a = np.array([rnd.randint(-3, 3) for _ in range(n)], dtype=float)
        b = np.array([rnd.randint(-3, 3) for _ in range(n)], dtype=float)
        want_a, want_b = a.copy(), b.copy()
        for _ in range(sweeps):
            want_a += want_b
            want_b += 1
        for strategy in ("owner-computes", "migrate"):
            xl = translate(prog, nprocs, strategy=strategy)
            it = Interpreter(xl, nprocs, model=FAST)
            it.write_global("A", a)
            it.write_global("B", b)
            it.run()
            assert np.array_equal(it.read_global("A"), want_a), strategy
            assert np.array_equal(it.read_global("B"), want_b), strategy


class TestEndToEndProperties:
    @given(elementwise_programs(), st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_all_paths_agree_with_sequential(self, params, rnd):
        src, n, nprocs, op, lo, hi = params
        prog = parse_program(src)
        a0 = np.array([rnd.randint(-5, 5) for _ in range(n)], dtype=float)
        b0 = np.array([rnd.randint(-5, 5) for _ in range(n)], dtype=float)
        want = _expected(a0, b0, op, lo, hi)

        variants = []
        naive = translate(prog, nprocs)
        variants.append(("naive", naive))
        variants.append(("opt", optimize(naive, nprocs).program))
        variants.append(("migrate", translate(prog, nprocs, strategy="migrate")))
        variants.append(
            ("migrate-lit", translate(prog, nprocs, strategy="migrate",
                                      literal_migrate=True))
        )
        for label, p in variants:
            it = Interpreter(p, nprocs, model=FAST)
            it.write_global("A", a0)
            it.write_global("B", b0)
            it.run()
            got = it.read_global("A")
            assert np.array_equal(got, want), (label, got, want)
            cp = lower(p, nprocs, model=FAST)
            cp.write_global("A", a0)
            cp.write_global("B", b0)
            cp.run()
            got_vm = cp.read_global("A")
            assert np.array_equal(got_vm, want), (label + "/vm", got_vm, want)

# ---------------------------------------------------------------------- #
# declaration-string layout plumbing (the tuner's search-space ground truth)
# ---------------------------------------------------------------------- #

from repro.core.analysis.layouts import (
    build_layouts, build_segmentation, decl_index_space,
)


@st.composite
def layout_decl_sources(draw):
    """A random valid declaration line plus a machine size.

    Exactly one distributed dimension (the rank-1 grid case the tuner
    enumerates); collapsed dims, offset bounds, and an optional explicit
    seg clause are all drawn freely.
    """
    rank = draw(st.integers(1, 3))
    dist_axis = draw(st.integers(0, rank - 1))
    nprocs = draw(st.sampled_from([2, 3, 4, 6]))
    bounds, specs, segs = [], [], []
    for axis in range(rank):
        lo = draw(st.integers(0, 2))
        extent = draw(st.integers(1, 9))
        bounds.append(f"{lo}:{lo + extent - 1}")
        if axis == dist_axis:
            specs.append(draw(st.sampled_from(
                ["BLOCK", "CYCLIC", "CYCLIC(2)", "CYCLIC(3)"]
            )))
        else:
            specs.append("*")
        segs.append(draw(st.integers(1, 3)))
    src = f"array A[{', '.join(bounds)}] dist ({', '.join(specs)})"
    if draw(st.booleans()):
        src += f" seg ({', '.join(map(str, segs))})"
    return src + "\n", nprocs


class TestDeclLayoutPlumbing:
    @given(layout_decl_sources())
    @settings(max_examples=80, deadline=None)
    def test_spec_strings_partition_exactly(self, case):
        src, nprocs = case
        program = parse_program(src)
        decl = program.array_decls()[0]
        grid = ProcessorGrid((nprocs,))
        seg = build_segmentation(decl, grid)
        # build_layouts is the same plumbing, program-wide
        assert build_layouts(program, grid)["A"] == seg
        counts: dict[tuple[int, ...], int] = {}
        for pid in grid.pids():
            for s in seg.segments(pid):
                for pt in s:
                    counts[pt] = counts.get(pt, 0) + 1
        # every declared element lands in exactly one processor's segments
        assert set(counts) == set(decl_index_space(decl))
        assert all(c == 1 for c in counts.values())

    @given(layout_decl_sources())
    @settings(max_examples=40, deadline=None)
    def test_segments_respect_declared_granularity(self, case):
        src, nprocs = case
        program = parse_program(src)
        decl = program.array_decls()[0]
        seg = build_segmentation(decl, ProcessorGrid((nprocs,)))
        if decl.segment_shape is not None:
            for pid in range(nprocs):
                for s in seg.segments(pid):
                    for t, cap in zip(s.dims, decl.segment_shape):
                        assert t.size <= cap


# ---------------------------------------------------------------------- #
# run-time ownership transfer: redistribution round-trips
# ---------------------------------------------------------------------- #

from repro.runtime.symtab import RuntimeSymbolTable, SegmentState


def _iota(sec):
    """Value of each point = its row-major position in the index space —
    distinct everywhere, so any misrouted element is visible."""
    return {pt: float(i) for i, pt in enumerate(sec)}


def _fill(symtabs, name, values):
    for st_ in symtabs:
        for d in st_.entry(name).segdescs:
            vals = np.array([values[pt] for pt in d.segment]).reshape(d.segment.shape)
            st_.write(name, d.segment, vals)


def _snapshot(symtabs, name):
    """point -> (pid, value) over all owned segments; asserts exclusivity."""
    out = {}
    for st_ in symtabs:
        for d in st_.entry(name).segdescs:
            assert d.state is SegmentState.ACCESSIBLE
            chunk = st_.read(name, d.segment).reshape(-1)
            for pt, v in zip(d.segment, chunk):
                assert pt not in out, f"{pt} owned by P{out[pt][0]} and P{st_.pid}"
                out[pt] = (st_.pid, float(v))
    return out


def _execute_plan(symtabs, name, plan):
    """Drive each move through the symtab state machine, as the engine
    would: release (gathering values), acquire (transitional), complete."""
    for m in plan.moves:
        data = symtabs[m.src].release_ownership(name, m.section, with_value=True)
        symtabs[m.dst].acquire_ownership(name, m.section)
        symtabs[m.dst].complete_ownership_receive(name, m.section, data)


class TestRedistributionRoundTrip:
    @given(distributions_st(), dim_specs, st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_there_and_back_preserves_data_and_ownership(self, src, new_spec, sw):
        """A -> B -> A through release/acquire/complete leaves every element
        with its original owner and original value, all accessible."""
        specs = list(src.specs)
        for i, s in enumerate(specs):
            if not s.collapsed:
                specs[i] = new_spec
                break
        dst = Distribution(
            src.index_space, tuple(specs), src.grid,
            dist_grid_shape=src.dist_grid_shape,
        )
        shape = (sw,) * src.rank
        seg = Segmentation(src, shape)
        nprocs = src.grid.size
        symtabs = [RuntimeSymbolTable(pid, strict=True) for pid in range(nprocs)]
        for st_ in symtabs:
            st_.declare("A", seg)
        values = _iota(src.index_space)
        _fill(symtabs, "A", values)
        before = _snapshot(symtabs, "A")

        _execute_plan(symtabs, "A", plan_redistribution(src, dst, segmentation=seg))
        mid = _snapshot(symtabs, "A")
        assert {pt: v for pt, (_, v) in mid.items()} == values
        for pt, (pid, _) in mid.items():
            assert pid == dst.owner(pt)

        _execute_plan(symtabs, "A", plan_redistribution(dst, src))
        after = _snapshot(symtabs, "A")
        assert after == before


# ---------------------------------------------------------------------- #
# segmentation / iown consistency
# ---------------------------------------------------------------------- #


@st.composite
def query_sections_st(draw, space):
    dims = []
    for t in space.dims:
        lo = draw(st.integers(t.lo, t.hi))
        hi = draw(st.integers(lo, t.hi))
        step = draw(st.integers(1, 3))
        dims.append(Triplet(lo, hi - (hi - lo) % step, step))
    return Section(tuple(dims))


class TestIownSegmentationConsistency:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_iown_matches_point_enumeration(self, data):
        """``iown`` (the section-3.1 intersection algorithm) agrees with
        brute-force point membership against the segmentation's segments,
        and ``accessible`` coincides with it while nothing is in flight."""
        dist = data.draw(distributions_st())
        sw = data.draw(st.integers(1, 3))
        seg = Segmentation(dist, (sw,) * dist.rank)
        q = data.draw(query_sections_st(dist.index_space))
        for pid in dist.grid.pids():
            st_ = RuntimeSymbolTable(pid)
            st_.declare("A", seg)
            owned_pts = {pt for s in seg.segments(pid) for pt in s}
            expected = set(q) <= owned_pts
            assert st_.iown("A", q) is expected
            assert st_.accessible("A", q) is expected
            assert (st_.state_of("A", q) is SegmentState.ACCESSIBLE) is expected

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_segments_cover_iown_of_whole_partition(self, data):
        """Each pid owns exactly its segments: iown is true on every single
        segment and on nothing that sticks out of the partition."""
        dist = data.draw(distributions_st())
        sw = data.draw(st.integers(1, 3))
        seg = Segmentation(dist, (sw,) * dist.rank)
        for pid in dist.grid.pids():
            st_ = RuntimeSymbolTable(pid)
            st_.declare("A", seg)
            for s in seg.segments(pid):
                assert st_.iown("A", s)
            for other in dist.grid.pids():
                if other == pid:
                    continue
                for s in seg.segments(other):
                    assert not st_.iown("A", s)
