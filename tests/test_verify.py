"""Unit tests for the IR verifier (static XDP obligations)."""

import pytest

from repro.core.errors import VerificationError
from repro.core.ir.parser import parse_program
from repro.core.ir.verify import verify_program


def check(src: str):
    verify_program(parse_program(src))


class TestDeclarations:
    def test_valid_program(self):
        check(
            "array A[1:4] dist (BLOCK) seg (1)\n"
            "array W[1:4] universal\n"
            "scalar n = 4\n\n"
            "do i = 1, n\n  iown(A[i]) : { A[i] = W[i] }\nenddo\n"
        )

    def test_duplicate_decl(self):
        with pytest.raises(VerificationError, match="duplicate"):
            check("array A[1:4] dist (BLOCK)\nscalar A\n")

    def test_undistributed_array(self):
        from repro.core.ir.nodes import ArrayDecl, Block, Program

        with pytest.raises(VerificationError, match="neither universal nor"):
            verify_program(
                Program((ArrayDecl("A", ((1, 4),)),), Block())
            )

    def test_empty_bounds(self):
        from repro.core.ir.nodes import ArrayDecl, Block, Program

        with pytest.raises(VerificationError, match="empty bounds"):
            verify_program(
                Program((ArrayDecl("A", ((4, 1),), dist="(BLOCK)"),), Block())
            )

    def test_segment_rank_mismatch(self):
        from repro.core.ir.nodes import ArrayDecl, Block, Program

        with pytest.raises(VerificationError, match="segment shape"):
            verify_program(
                Program(
                    (ArrayDecl("A", ((1, 4),), dist="(BLOCK)",
                               segment_shape=(1, 1)),),
                    Block(),
                )
            )


class TestReferences:
    def test_undeclared_array(self):
        with pytest.raises(VerificationError, match="not a declared array"):
            check("array A[1:4] dist (BLOCK)\n\nB[1] = 0\n")

    def test_rank_mismatch(self):
        with pytest.raises(VerificationError, match="rank"):
            check("array A[1:4,1:4] dist (BLOCK, BLOCK)\n\nA[1] = 0\n")

    def test_undeclared_scalar(self):
        with pytest.raises(VerificationError, match="undeclared scalar"):
            check("array A[1:4] dist (BLOCK)\n\nA[1] = x\n")

    def test_loop_variable_is_bound(self):
        check("array A[1:4] dist (BLOCK)\n\ndo i = 1, 4\n  A[i] = i\nenddo\n")

    def test_loop_shadowing_rejected(self):
        with pytest.raises(VerificationError, match="shadows"):
            check(
                "array A[1:4] dist (BLOCK)\n\n"
                "do i = 1, 2\n  do i = 1, 2\n    A[i] = 0\n  enddo\nenddo\n"
            )


class TestXDPRestrictions:
    def test_send_of_universal_rejected(self):
        with pytest.raises(VerificationError, match="universally owned"):
            check("array W[1:4] universal\n\nW[1] ->\n")

    def test_recv_into_universal_rejected(self):
        with pytest.raises(VerificationError, match="universally owned"):
            check("array W[1:4] universal\n\nW[1] <=-\n")

    def test_recv_source_must_be_exclusive(self):
        with pytest.raises(VerificationError, match="universally owned"):
            check(
                "array A[1:4] dist (BLOCK)\narray W[1:4] universal\n\n"
                "A[1] <- W[1]\n"
            )

    def test_intrinsic_arg_must_be_exclusive(self):
        with pytest.raises(VerificationError, match="universally owned"):
            check(
                "array A[1:4] dist (BLOCK)\narray W[1:4] universal\n\n"
                "iown(W[1]) : { A[1] = 0 }\n"
            )

    def test_await_statement_on_universal_rejected(self):
        with pytest.raises(VerificationError, match="universally owned"):
            check("array W[1:4] universal\n\nawait(W[1])\n")

    def test_all_transfer_forms_on_exclusive_ok(self):
        check(
            "array A[1:4] dist (BLOCK)\n\n"
            "A[1] ->\nA[1] -> {1, 2}\nA[2] =>\nA[2] -=>\n"
            "A[1] <- A[3]\nA[3] <=\nA[3] <=-\n"
        )

    def test_pipeline_output_verifies(self):
        from repro.core.opt import optimize
        from repro.core.translate import translate

        src = (
            "array A[1:8] dist (BLOCK) seg (1)\n"
            "array B[1:8] dist (CYCLIC) seg (1)\n\n"
            "do i = 1, 8\n  A[i] = A[i] + B[i]\nenddo\n"
        )
        prog = translate(parse_program(src), 4)
        verify_program(prog)
        verify_program(optimize(prog, 4).program)
