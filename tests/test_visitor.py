"""Unit tests for the IR traversal/rewriting utilities."""

from repro.core.ir.nodes import (
    ArrayRef, Assign, BinOp, Block, DoLoop, Full, Guarded, Index, IntConst,
    Iown, Mypid, Range, RecvStmt, SendStmt, VarRef, XferOp,
)
from repro.core.ir.parser import parse_expression, parse_statements
from repro.core.ir.printer import print_expr, print_stmt
from repro.core.ir.visitor import (
    array_refs,
    free_scalars,
    loop_depth,
    map_block,
    map_expr,
    substitute,
    substitute_stmt,
    walk_exprs,
    walk_stmts,
)


class TestMapExpr:
    def test_bottom_up_rebuild(self):
        e = parse_expression("A[i] + B[i+1] * 2")

        def bump(x):
            if isinstance(x, IntConst):
                return IntConst(x.value + 10)
            return x

        out = map_expr(e, bump)
        assert print_expr(out) == "A[i] + B[i + 11] * 12"

    def test_identity_preserves_structure(self):
        e = parse_expression("iown(A[1:4:2,*]) and mylb(B[*], 1) < 5")
        assert map_expr(e, lambda x: x) == e


class TestSubstitute:
    def test_scalar_to_mypid(self):
        e = parse_expression("A[p] + p * 2")
        out = substitute(e, {"p": Mypid()})
        assert print_expr(out) == "A[mypid] + mypid * 2"

    def test_substitute_in_subscripts_and_guards(self):
        (s,) = parse_statements("iown(A[k]) : { A[k] = A[k] + k }").stmts
        out = substitute_stmt(s, {"k": Mypid()})
        text = "\n".join(print_stmt(out))
        assert "iown(A[mypid])" in text
        assert "A[mypid] = A[mypid] + mypid" in text

    def test_loop_rebinding_stops_substitution(self):
        (s,) = parse_statements(
            "do k = 1, n\n  A[k] = k + m\nenddo"
        ).stmts
        out = substitute_stmt(s, {"k": IntConst(9), "m": IntConst(7), "n": IntConst(3)})
        text = "\n".join(print_stmt(out))
        # k is rebound by the loop: body keeps k; m and the bound substitute.
        assert "do k = 1, 3" in text
        assert "A[k] = k + 7" in text

    def test_transfer_statements(self):
        (s,) = parse_statements("A[j] -> {j + 1}").stmts
        out = substitute_stmt(s, {"j": IntConst(2)})
        assert "\n".join(print_stmt(out)) == "A[2] -> {2 + 1}"


class TestWalkers:
    SRC = """
do i = 1, 4
  iown(A[i]) : {
    T[mypid] <- B[i]
    await(T[mypid])
    A[i] = A[i] + T[mypid]
  }
enddo
"""

    def test_walk_stmts_counts(self):
        block = parse_statements(self.SRC)
        kinds = [type(s).__name__ for s in walk_stmts(block)]
        assert kinds.count("DoLoop") == 1
        assert kinds.count("Guarded") == 1
        assert kinds.count("RecvStmt") == 1
        assert kinds.count("Assign") == 1

    def test_array_refs_collects_all_positions(self):
        block = parse_statements(self.SRC)
        names = sorted({r.var for r in array_refs(block)})
        assert names == ["A", "B", "T"]

    def test_array_refs_on_expression(self):
        refs = list(array_refs(parse_expression("A[1] + iown(B[2])")))
        assert {r.var for r in refs} == {"A", "B"}

    def test_free_scalars(self):
        block = parse_statements(self.SRC)
        assert free_scalars(block) == set()  # i bound by the loop
        (bare,) = parse_statements("x = y + z").stmts
        assert free_scalars(bare) == {"x", "y", "z"}

    def test_free_scalars_nested_binding(self):
        block = parse_statements(
            "do i = 1, n\n  do j = 1, i\n    A[j] = i + k\n  enddo\nenddo"
        )
        assert free_scalars(block) == {"n", "k"}

    def test_walk_exprs_preorder(self):
        e = parse_expression("a + b * c")
        kinds = [type(x).__name__ for x in walk_exprs(e)]
        assert kinds[0] == "BinOp"
        assert kinds.count("VarRef") == 3

    def test_loop_depth(self):
        block = parse_statements(
            "do i = 1, 2\n  do j = 1, 2\n    A[i] = j\n  enddo\nenddo\n"
            "do k = 1, 2\n  A[k] = 0\nenddo"
        )
        assert loop_depth(block) == 2


class TestMapBlock:
    def test_delete_and_splice(self):
        block = parse_statements("A[1] = 0\nB[1] = 1\nA[2] = 2")

        def f(s):
            if isinstance(s, Assign) and s.target.var == "B":
                return None  # delete
            if isinstance(s, Assign) and s.target.subs == (Index(IntConst(2)),):
                return [s, s]  # duplicate
            return s

        out = map_block(block, f)
        assert len(out) == 3
        assert out.stmts[1] == out.stmts[2]
