"""The placement-tuning subsystem (repro.tune).

Headline (the ISSUE's acceptance bar): the tuner, given the *naive*
section-4 FFT program, rediscovers the paper's ``(*,*,BLOCK)`` →
``(*,BLOCK,*)`` repartitioning and its simulated makespan is no worse
than the hand-optimized final stage.  Plus: determinism, the memoized
oracle, parallel-vs-serial bit-identity, and the calibration guard
pinning the analytic cost model to the real engine on the Jacobi and
workqueue apps at P in {4, 16}.
"""

import numpy as np
import pytest

from repro.apps.fft3d import fft3d_source, run_fft3d
from repro.apps.jacobi import jacobi_source, run_jacobi
from repro.apps.workqueue import make_job_costs, run_workqueue
from repro.core.codegen import lower
from repro.core.ir.parser import parse_program
from repro.machine.model import MachineModel
from repro.tune import (
    CALIBRATION_RTOL,
    EvalCache,
    EvalTask,
    LayoutCandidate,
    detect_phases,
    enumerate_layouts,
    estimate_program,
    estimate_workqueue,
    evaluate_candidates,
    generate_phased_program,
    phase_layouts,
    tune,
)
from repro.tune.cost import EstimateError
from repro.tune.rewrite import TuneError

N, P = 8, 4
PAPER_LAYOUTS = [
    LayoutCandidate("(*, *, BLOCK)", (8, 1, 1)),
    LayoutCandidate("(*, *, BLOCK)", (8, 1, 1)),
    LayoutCandidate("(*, BLOCK, *)", (8, 1, 1)),
]


@pytest.fixture(scope="module")
def naive_src():
    return fft3d_source(N, P, 0)


@pytest.fixture(scope="module")
def tuned(naive_src):
    return tune(naive_src, P)


@pytest.fixture(scope="module")
def hand_makespans():
    return {s: run_fft3d(N, P, s).makespan for s in (0, 1, 2)}


class TestHeadline:
    def test_rediscovers_paper_repartitioning(self, tuned):
        dists = [c.dist for c in tuned.phase_layouts]
        # The j- and i-direction phases stay on the initial placement;
        # the k-direction phase gets the paper's repartitioning.
        assert dists[:2] == ["(*, *, BLOCK)", "(*, *, BLOCK)"]
        assert "(*, BLOCK, *)" in dists

    def test_matches_or_beats_hand_optimized_stage(self, tuned, hand_makespans):
        assert tuned.makespan <= hand_makespans[2]

    def test_beats_naive_baseline(self, tuned, hand_makespans):
        assert tuned.baseline_makespan == hand_makespans[0]
        assert tuned.makespan <= tuned.baseline_makespan

    def test_semantics_preserved(self, tuned):
        assert tuned.semantics_preserved

    def test_winner_confirmed_through_cache(self, tuned):
        assert tuned.cache.hits >= 1

    def test_deterministic(self, naive_src, tuned):
        again = tune(naive_src, P)
        assert again.phase_layouts == tuned.phase_layouts
        assert again.realization == tuned.realization
        assert again.source == tuned.source
        assert again.makespan == tuned.makespan
        assert again.analytic == tuned.analytic


class TestOracle:
    def _tasks(self, model):
        return [
            EvalTask(fft3d_source(N, P, s), P, model, label=f"stage{s}")
            for s in (0, 1, 2)
        ]

    def test_parallel_bit_identical_to_serial(self):
        model = MachineModel()
        serial = evaluate_candidates(self._tasks(model), parallel=False)
        par = evaluate_candidates(self._tasks(model), parallel=True)
        assert [r.digest for r in serial] == [r.digest for r in par]
        assert [r.makespan for r in serial] == [r.makespan for r in par]
        for a, b in zip(serial, par):
            assert set(a.arrays) == set(b.arrays)
            for k in a.arrays:
                assert np.array_equal(a.arrays[k], b.arrays[k])

    def test_cache_avoids_resimulation(self):
        model = MachineModel()
        cache = EvalCache()
        first = evaluate_candidates(self._tasks(model), cache=cache)
        assert cache.hits == 0 and cache.misses == 3
        second = evaluate_candidates(self._tasks(model), cache=cache)
        assert cache.hits == 3
        assert all(r.from_cache for r in second)
        assert [r.makespan for r in first] == [r.makespan for r in second]

    def test_digest_sensitive_to_inputs(self):
        model = MachineModel()
        t = EvalTask("array A[1:4] dist (BLOCK) seg (1)\n", 4, model)
        assert t.digest != EvalTask(t.program, 8, model).digest
        assert t.digest != EvalTask(t.program, 4, model, seed=8).digest
        assert t.digest != EvalTask(
            t.program, 4, MachineModel.high_latency()
        ).digest


class TestCalibration:
    """The analytic model must track the real engine (drift guard)."""

    @pytest.mark.parametrize("nprocs", [4, 16])
    @pytest.mark.parametrize("variant", ["halo", "halo-overlap"])
    def test_jacobi(self, variant, nprocs):
        real = run_jacobi(64, nprocs, 3, variant).stats.makespan
        est = estimate_program(jacobi_source(64, nprocs, 3, variant), nprocs)
        assert est.makespan == pytest.approx(real, rel=CALIBRATION_RTOL)

    @pytest.mark.parametrize("nprocs", [4, 16])
    @pytest.mark.parametrize("scheme", ["dynamic", "static"])
    def test_workqueue(self, scheme, nprocs):
        njobs = 32
        costs = make_job_costs(njobs)
        real = run_workqueue(njobs, nprocs, scheme=scheme, costs=costs)
        est = estimate_workqueue(njobs, nprocs, costs=costs, scheme=scheme)
        assert est.makespan == pytest.approx(
            real.stats.makespan, rel=CALIBRATION_RTOL
        )

    @pytest.mark.parametrize("stage", [0, 1, 2])
    def test_fft_stages_exact(self, stage, hand_makespans):
        est = estimate_program(fft3d_source(N, P, stage), P)
        assert est.makespan == hand_makespans[stage]

    def test_message_accounting_matches_engine(self):
        real = run_fft3d(N, P, 1)
        est = estimate_program(fft3d_source(N, P, 1), P)
        assert est.total_messages == real.stats.total_messages
        assert est.total_bytes == real.stats.total_bytes

    def test_data_dependent_program_rejected(self):
        src = """array A[1:4] dist (BLOCK) seg (1)
scalar a
iown(A[1]) : {
  a = A[1]
}
do i = 1, a
  A[i] = 0
enddo
"""
        with pytest.raises(EstimateError):
            estimate_program(src, 2)


class TestSpace:
    def test_enumeration_canonical_and_pruned(self):
        decl = parse_program(fft3d_source(N, P, 0)).array_decls()[0]
        cands = enumerate_layouts(decl, P)
        assert cands == sorted(set(cands))
        # at least one distributed dimension everywhere
        assert all(c.distributed_axes() for c in cands)

    def test_phase_layouts_keep_axis_local(self):
        decl = parse_program(fft3d_source(N, P, 0)).array_decls()[0]
        for axis in (0, 1, 2):
            for c in phase_layouts(decl, P, axis):
                assert axis not in c.distributed_axes()
                assert len(c.distributed_axes()) == 1


class TestRewrite:
    @pytest.mark.parametrize("stage", [0, 1, 2])
    def test_detects_same_phases_in_every_hand_stage(self, stage):
        phases = detect_phases(parse_program(fft3d_source(N, P, stage)))
        assert [p.axis for p in phases] == [1, 0, 2]
        assert all(p.kernel == "fft1D" and p.var == "A" for p in phases)

    @pytest.mark.parametrize("realization", ["bulk", "pipelined"])
    def test_generated_programs_compute_the_fft(self, naive_src, realization):
        program = parse_program(naive_src)
        src = generate_phased_program(
            program, detect_phases(program), PAPER_LAYOUTS, P,
            realization=realization,
        )
        runner = lower(parse_program(src), P)
        rng = np.random.default_rng(3)
        a0 = rng.standard_normal((N, N, N)) + 1j * rng.standard_normal((N, N, N))
        runner.write_global("A", a0)
        runner.run()
        assert np.allclose(
            runner.read_global("A"), np.fft.fftn(a0), atol=1e-9 * N**3
        )

    def test_rejects_non_pencil_programs(self):
        src = """array A[1:4,1:4] dist (BLOCK, *) seg (1,4)
do i = 1, 4
  iown(A[i,*]) : {
    call smooth(A[i,*])
  }
enddo
do j = 1, 4
  iown(A[*,j]) : {
    A[*,j] = A[*,j] * 2
  }
enddo
"""
        program = parse_program(src)
        phases = detect_phases(program)  # only the call is a phase
        assert len(phases) == 1 and phases[0].axis == 1
        # Distributing the phase axis breaks pencil locality.
        with pytest.raises(TuneError):
            generate_phased_program(
                program, phases, [LayoutCandidate("(*, BLOCK)")], 4
            )
        with pytest.raises(TuneError):
            generate_phased_program(program, phases, list(PAPER_LAYOUTS), 4)


class TestTuneOnHighLatencyModel:
    def test_model_changes_are_respected(self, naive_src):
        res = tune(naive_src, P, model=MachineModel.high_latency(), top_k=2)
        assert res.semantics_preserved
        assert res.makespan <= res.baseline_makespan
