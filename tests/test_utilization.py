"""Tests for the utilization renderer and additional app robustness cases."""

import numpy as np
import pytest

from repro.apps import run_fft3d, run_jacobi, run_workqueue
from repro.machine import MachineModel
from repro.machine.stats import ProcStats, RunStats
from repro.report import utilization_bars, utilization_summary

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


class TestUtilization:
    def make_stats(self):
        return RunStats(
            procs=[
                ProcStats(0, compute_time=50, idle_time=50, finish_time=100),
                ProcStats(1, compute_time=100, finish_time=100),
            ],
            makespan=100.0,
        )

    def test_bars_render(self):
        text = utilization_bars(self.make_stats(), width=20)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("P1 |")
        assert "#" in lines[0] and "." in lines[0]
        assert lines[1].count("#") == 20  # fully busy

    def test_busy_percent(self):
        text = utilization_bars(self.make_stats())
        assert "busy  50.0%" in text
        assert "busy 100.0%" in text

    def test_summary_fractions(self):
        s = utilization_summary(self.make_stats())
        assert s["compute"] == pytest.approx(0.75)
        assert s["idle"] == pytest.approx(0.25)
        assert s["overhead"] == 0.0

    def test_empty_stats(self):
        assert utilization_bars(RunStats()) == ""

    def test_real_run(self):
        r = run_fft3d(4, 4, 1, model=FAST)
        text = utilization_bars(r.stats)
        assert text.count("|") == 8  # 4 rows, two bars each


class TestAppRobustness:
    @pytest.mark.parametrize("n,nprocs", [(12, 4), (8, 8), (6, 2), (16, 2)])
    def test_fft_sizes(self, n, nprocs):
        assert run_fft3d(n, nprocs, 2, model=FAST).correct

    @pytest.mark.parametrize("nprocs", [2, 3, 8])
    def test_jacobi_processor_counts(self, nprocs):
        r = run_jacobi(48, nprocs, 2, "halo-overlap", model=FAST)
        assert r.correct

    def test_jacobi_single_sweep(self):
        assert run_jacobi(16, 4, 1, "halo", model=FAST).correct

    def test_workqueue_minimal(self):
        r = run_workqueue(3, 2, scheme="dynamic", costs=np.ones(3), model=FAST)
        assert sum(r.jobs_per_worker.values()) == 3

    def test_workqueue_many_workers_few_jobs(self):
        r = run_workqueue(2, 6, scheme="dynamic", costs=np.ones(2) * 50, model=FAST)
        assert sum(r.jobs_per_worker.values()) == 2
        assert r.stats.unmatched_receives == 0
