"""Unit tests for the kernel registry and the machine cost model."""

import math

import numpy as np
import pytest

from repro.core.kernels import KernelRegistry, default_registry
from repro.machine import HEADER_BYTES, MachineModel


class TestKernels:
    def test_default_registry_contents(self):
        reg = default_registry()
        for name in ("fft1D", "work", "negate", "scale", "smooth"):
            assert name in reg

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="nosuch"):
            default_registry().get("nosuch")

    def test_fft1d_correctness_and_flops(self):
        k = default_registry().get("fft1D")
        x = (np.arange(8.0) + 0j).reshape(1, 8, 1)
        flops = k.fn(x)
        assert np.allclose(x.reshape(8), np.fft.fft(np.arange(8.0)))
        assert flops == int(5 * 8 * math.log2(8))

    def test_fft1d_single_element(self):
        k = default_registry().get("fft1D")
        x = np.array([3.0 + 0j])
        assert k.fn(x) == 1

    def test_work_units(self):
        k = default_registry().get("work")
        assert k.fn(123.7) == 123

    def test_scale_and_negate(self):
        reg = default_registry()
        x = np.array([1.0, 2.0])
        reg.get("scale").fn(x, 3.0)
        assert list(x) == [3.0, 6.0]
        reg.get("negate").fn(x)
        assert list(x) == [-3.0, -6.0]

    def test_smooth(self):
        x = np.array([0.0, 3.0, 0.0, 3.0, 0.0])
        default_registry().get("smooth").fn(x.reshape(1, 5))

    def test_custom_registration(self):
        reg = KernelRegistry()

        def double(arr):
            arr *= 2
            return arr.size

        reg.register("double", double)
        x = np.ones(4)
        assert reg.get("double").fn(x) == 4
        assert np.all(x == 2.0)


class TestMachineModel:
    def test_message_cost(self):
        m = MachineModel(alpha=100, per_byte=0.5)
        assert m.message_cost(200) == 100 + 100
        assert m.elems_cost(10) == 100 + 10 * 8 * 0.5

    def test_presets_ordering(self):
        mp = MachineModel.message_passing()
        sa = MachineModel.shared_address()
        hl = MachineModel.high_latency()
        assert sa.alpha < mp.alpha < hl.alpha
        assert sa.o_send < mp.o_send

    def test_with_override(self):
        m = MachineModel().with_(alpha=7.0)
        assert m.alpha == 7.0
        assert m.o_send == MachineModel().o_send

    def test_header_constant(self):
        assert HEADER_BYTES == 16


class TestStatsRendering:
    def test_summary_flags_unmatched(self):
        from repro.machine.stats import ProcStats, RunStats

        s = RunStats(procs=[ProcStats(0)], unclaimed_messages=2)
        assert "WARNING" in s.summary()

    def test_aggregates(self):
        from repro.machine.stats import ProcStats, RunStats

        s = RunStats(procs=[
            ProcStats(0, compute_time=5, idle_time=1, send_overhead=2),
            ProcStats(1, compute_time=3, idle_time=4, recv_overhead=6),
        ])
        assert s.total_compute_time == 8
        assert s.total_idle_time == 5
        assert s.total_overhead == 8
