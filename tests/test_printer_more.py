"""Additional pretty-printer tests: precedence, declarations, statements."""

import pytest

from repro.core.ir.nodes import (
    ArrayDecl, ArrayRef, BinOp, Full, Index, IntConst, Range, ScalarDecl,
    UnaryOp, VarRef,
)
from repro.core.ir.parser import parse_expression, parse_program, parse_statements
from repro.core.ir.printer import print_expr, print_program, print_ref, print_stmt


class TestPrecedenceParens:
    @pytest.mark.parametrize("text", [
        "(a + b) * c",
        "a * (b + c)",
        "a - (b - c)",
        "(a or b) and c",
        "not (a and b)",
        "-(a + b)",
        "(a + b) % 2",
    ])
    def test_needed_parens_survive(self, text):
        e = parse_expression(text)
        assert parse_expression(print_expr(e)) == e

    @pytest.mark.parametrize("src,out", [
        ("a + b + c", "a + b + c"),          # left assoc, no parens
        ("a + (b + c)", "a + (b + c)"),      # right nesting preserved
        ("a * b + c", "a * b + c"),
        ("(a * b) + c", "a * b + c"),        # redundant parens dropped
    ])
    def test_minimal_parens(self, src, out):
        assert print_expr(parse_expression(src)) == out


class TestRefPrinting:
    def test_all_subscript_kinds(self):
        ref = ArrayRef("A", (
            Index(VarRef("i")),
            Full(),
            Range(IntConst(1), IntConst(9), IntConst(2)),
            Range(None, None, None),
            Range(IntConst(3), None, None),
        ))
        assert print_ref(ref) == "A[i,*,1:9:2,:,3:]"


class TestDeclPrinting:
    def test_full_array_decl(self):
        prog = parse_program(
            "array B[1:16,1:16] dist (BLOCK, CYCLIC(2)) seg (4,2) "
            "dtype complex128\n"
        )
        text = print_program(prog)
        assert "dist (BLOCK, CYCLIC(2))" in text
        assert "seg (4,2)" in text
        assert "dtype complex128" in text

    def test_universal_decl(self):
        text = print_program(parse_program("array W[1:4] universal\n"))
        assert "universal" in text and "dist" not in text

    def test_default_dtype_omitted(self):
        text = print_program(parse_program("array A[1:4] dist (BLOCK)\n"))
        assert "dtype" not in text

    def test_scalar_with_and_without_init(self):
        text = print_program(parse_program("scalar a = 2\nscalar b\n"))
        assert "scalar a = 2" in text
        assert "scalar b" in text and "scalar b =" not in text


class TestStatementPrinting:
    def test_if_without_else(self):
        (s,) = parse_statements("if x > 0 then\n  x = 1\nendif").stmts
        text = "\n".join(print_stmt(s))
        assert "else" not in text

    def test_guard_block_layout(self):
        (s,) = parse_statements("iown(A[1]) : { A[1] = 0 }").stmts
        lines = print_stmt(s)
        assert lines[0].endswith("{")
        assert lines[-1] == "}"
        assert lines[1].startswith("  ")

    def test_send_with_dests(self):
        (s,) = parse_statements("A[1] -=> {2, mypid + 1}").stmts
        assert "\n".join(print_stmt(s)) == "A[1] -=> {2, mypid + 1}"

    def test_nested_indentation(self):
        block = parse_statements(
            "do i = 1, 2\n  iown(A[i]) : {\n    A[i] = 0\n  }\nenddo"
        )
        lines = print_stmt(block.stmts[0])
        assert lines[0] == "do i = 1, 2"
        assert lines[1].startswith("  ")
        assert lines[2].startswith("    ")
