"""Fidelity tests: the optimizer reproduces the paper's own hand-derived
program transformations on its exact listings.

Section 4 presents the 3-D FFT at three stages and describes the compiler
steps between them.  Here we start from the stage-0 listing and check that
*our* passes derive the paper's stage-1 and stage-2 structures:

* compute-rule elimination turns every ``do k { iown(A[*,*,k]) : body }``
  into ``body[k := mypid]`` (including the redistribution loop, whose own
  body moves ownership — the dynamic-simulation case);
* loop fusion merges the i-direction FFT loop with the ownership-send
  loop ("Dependence analysis of Loops 2 and 3a indicates that they can be
  fused together");
* await sinking moves ``await(A[*,mypid,*])`` into the final loop as
  ``await(A[i,mypid,*])``.

Every intermediate program is executed and validated against numpy's FFT.
"""

import numpy as np
import pytest

from repro.apps.fft3d import fft3d_source
from repro.core.interp import Interpreter
from repro.core.ir.nodes import (
    Await, CallStmt, DoLoop, ExprStmt, Guarded, Mypid, RecvStmt, SendStmt,
    Index,
)
from repro.core.ir.parser import parse_program
from repro.core.ir.printer import print_program
from repro.core.opt import (
    AwaitSinking, Cleanup, ComputeRuleElimination, LoopFusion, PassManager,
)
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)
N = 4


def run_fft_program(program):
    it = Interpreter(program, N, model=FAST)
    rng = np.random.default_rng(3)
    a0 = rng.standard_normal((N, N, N)) + 1j * rng.standard_normal((N, N, N))
    it.write_global("A", a0)
    stats = it.run()
    assert np.allclose(it.read_global("A"), np.fft.fftn(a0), atol=1e-9)
    return stats


@pytest.fixture(scope="module")
def stage0():
    return parse_program(fft3d_source(N, N, 0))


@pytest.fixture(scope="module")
def derived_stage1(stage0):
    return PassManager([ComputeRuleElimination(), Cleanup()]).run(stage0, N)


class TestStage0ToStage1:
    def test_all_three_guarded_loops_localized(self, derived_stage1):
        mypid_notes = [r for r in derived_stage1.reports if "mypid" in r]
        assert len(mypid_notes) == 3  # loop1, loop2, loop3

    def test_structure_matches_paper_listing(self, derived_stage1):
        body = list(derived_stage1.program.body)
        # Loop1/Loop2 are now bare loops of fft calls over mypid's plane.
        assert isinstance(body[0], DoLoop)
        (call0,) = body[0].body.stmts
        assert isinstance(call0, CallStmt) and call0.name == "fft1D"
        # The plane subscript became mypid.
        ref = call0.args[0]
        assert ref.subs[2] == Index(Mypid())
        # Loop3 split into the send loop and the receive loop.
        sends = [s for s in body if isinstance(s, DoLoop)
                 and any(isinstance(x, SendStmt) for x in s.body)]
        recvs = [s for s in body if isinstance(s, DoLoop)
                 and any(isinstance(x, RecvStmt) for x in s.body)]
        assert len(sends) == 1 and len(recvs) == 1
        # Loop4's await guard survives (its array's ownership moved, so the
        # pass correctly leaves it alone).
        awaits = [
            s for s in body
            if isinstance(s, DoLoop)
            and any(isinstance(x, Guarded) and isinstance(x.rule, Await)
                    for x in s.body)
        ]
        assert len(awaits) == 1

    def test_derived_stage1_runs_correctly(self, derived_stage1):
        run_fft_program(derived_stage1.program)

    def test_guard_cost_removed(self, stage0, derived_stage1):
        s0 = run_fft_program(stage0)
        s1 = run_fft_program(derived_stage1.program)
        assert s1.makespan < s0.makespan


class TestStage1ToStage2:
    def test_fusion_merges_compute_and_send_loops(self):
        # The paper's stage-1 listing, written directly.
        program = parse_program(fft3d_source(N, N, 1))
        result = PassManager([LoopFusion()]).run(program, N)
        assert any("fused" in r for r in result.reports)
        run_fft_program(result.program)

    def test_await_sinks_into_final_loop(self):
        program = parse_program(fft3d_source(N, N, 1))
        result = PassManager([AwaitSinking()]).run(program, N)
        assert any("moved await" in r for r in result.reports)
        # The awaited section now carries the loop index in dim 1.
        text = print_program(result.program)
        assert "await(A[i,mypid,*])" in text
        run_fft_program(result.program)

    def test_full_derivation_runs(self):
        program = parse_program(fft3d_source(N, N, 0))
        result = PassManager(
            [ComputeRuleElimination(), LoopFusion(), AwaitSinking(), Cleanup()]
        ).run(program, N)
        run_fft_program(result.program)


class TestSimpleExampleListing:
    """The section-2.2 listings parse and behave exactly as printed."""

    PAPER_NAIVE = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
array T[1:4] dist (BLOCK) seg (1)
scalar n = 8

do i = 1, n
  iown(B[i]) : { B[i] -> }
  iown(A[i]) : {
    T[mypid] <- B[i]
    await(T[mypid])
    A[i] = A[i] + T[mypid]
  }
enddo
"""

    PAPER_MIGRATE = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
scalar n = 8

do i = 1, n
  iown(A[i]) : { A[i] -=> }
  iown(B[i]) : { A[i] <=- }
  await(A[i]) : { A[i] = A[i] + B[i] }
enddo
"""

    @pytest.mark.parametrize("src", [PAPER_NAIVE, PAPER_MIGRATE])
    def test_literal_listing_computes_correctly(self, src):
        it = Interpreter(parse_program(src), 4, model=FAST)
        a0 = np.arange(1.0, 9)
        b0 = 10 * np.arange(1.0, 9)
        it.write_global("A", a0)
        it.write_global("B", b0)
        it.run()
        assert np.array_equal(it.read_global("A"), a0 + b0)

    def test_migrate_listing_moves_ownership(self):
        it = Interpreter(parse_program(self.PAPER_MIGRATE), 4, model=FAST)
        it.write_global("A", np.zeros(8))
        it.write_global("B", np.zeros(8))
        it.run()
        # A's ownership ends up cyclic, like B's.
        from repro.core.sections import section

        for i in range(1, 9):
            owner = (i - 1) % 4
            assert it.engine.symtabs[owner].iown("A", section(i))
