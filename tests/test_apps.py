"""Integration tests for the application layer (paper sections 2.6, 2.7, 4)."""

import numpy as np
import pytest

from repro.apps import (
    fft3d_redistribution_schedule,
    fft3d_source,
    make_job_costs,
    run_fft3d,
    run_jacobi,
    run_monitor,
    run_workqueue,
)
from repro.core.ir.parser import parse_program
from repro.core.ir.verify import verify_program
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


class TestFFT3D:
    @pytest.mark.parametrize("stage", [0, 1, 2])
    def test_paper_case_correct(self, stage):
        r = run_fft3d(4, 4, stage, model=FAST)
        assert r.correct
        assert r.stats.unclaimed_messages == 0

    @pytest.mark.parametrize("stage", [0, 1, 2])
    def test_general_case_correct(self, stage):
        r = run_fft3d(8, 4, stage, model=FAST)
        assert r.correct

    def test_two_procs(self):
        r = run_fft3d(8, 2, 2, model=FAST)
        assert r.correct

    def test_interp_path_agrees(self):
        a = run_fft3d(4, 4, 0, model=FAST, path="vm")
        b = run_fft3d(4, 4, 0, model=FAST, path="interp")
        assert a.correct and b.correct
        assert a.messages == b.messages

    def test_message_counts_match_redistribution(self):
        # n == P: every processor ships n-1 column slabs (keeps its own).
        r = run_fft3d(4, 4, 1, model=FAST)
        assert r.messages == 4 * 3 + 4  # 12 off-processor + 4 self slabs

    def test_stage1_removes_guard_overhead(self):
        s0 = run_fft3d(4, 4, 0, model=FAST)
        s1 = run_fft3d(4, 4, 1, model=FAST)
        assert s1.makespan < s0.makespan

    def test_stage2_improves_mean_finish_under_latency(self):
        m = MachineModel(alpha=2000, per_byte=5.0, o_send=50, o_recv=50)
        s1 = run_fft3d(16, 4, 1, model=m)
        s2 = run_fft3d(16, 4, 2, model=m)
        mean1 = np.mean([p.finish_time for p in s1.stats.procs])
        mean2 = np.mean([p.finish_time for p in s2.stats.procs])
        assert mean2 < mean1

    def test_sources_verify(self):
        for n, P in [(4, 4), (8, 4)]:
            for stage in (0, 1, 2, 3):
                verify_program(parse_program(fft3d_source(n, P, stage)))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            fft3d_source(7, 4, 0)
        with pytest.raises(ValueError):
            fft3d_source(8, 4, 9)


class TestFFT3DStage3:
    """Stage 3: the repartition routed through the bounded planner."""

    def test_correct(self):
        r = run_fft3d(8, 4, 3, model=FAST)
        assert r.correct
        assert r.stats.unclaimed_messages == 0

    def test_peak_temp_memory_is_one_third_of_naive(self):
        # The §4 repartition at the default budget runs in 3 rounds whose
        # receive windows peak at exactly 1/3 of the all-at-once exchange:
        # 512 B/proc instead of 1536 B (complex128, n=8, P=4).
        sched = fft3d_redistribution_schedule(8, 4)
        assert sched.round_count == 3
        assert sched.naive_peak_bytes == 1536
        assert sched.peak_temp_bytes == 512
        assert sched.peak_temp_bytes * 3 == sched.naive_peak_bytes

    @pytest.mark.msg_timing
    def test_planner_trades_latency_for_memory(self):
        # The fences serialize rounds, so stage 3 may be slower than the
        # unbounded stage 1 — but it must still beat the naive program.
        s0 = run_fft3d(8, 4, 0, model=FAST)
        s3 = run_fft3d(8, 4, 3, model=FAST)
        assert s3.makespan < s0.makespan

    def test_matches_other_stages_bitwise(self):
        base = run_fft3d(8, 4, 1, model=FAST)
        s3 = run_fft3d(8, 4, 3, model=FAST)
        np.testing.assert_allclose(s3.result, base.result, atol=1e-12)


class TestJacobi:
    @pytest.mark.parametrize("variant", ["naive", "halo", "halo-overlap"])
    def test_correct(self, variant):
        r = run_jacobi(32, 4, 2, variant, model=FAST)
        assert r.correct

    def test_halo_slashes_messages(self):
        naive = run_jacobi(32, 4, 2, "naive", model=FAST)
        halo = run_jacobi(32, 4, 2, "halo", model=FAST)
        assert halo.messages < naive.messages / 5
        assert halo.makespan < naive.makespan

    def test_overlap_hides_latency(self):
        m = MachineModel.high_latency()
        halo = run_jacobi(64, 4, 3, "halo", model=m)
        over = run_jacobi(64, 4, 3, "halo-overlap", model=m)
        assert over.correct and halo.correct
        assert over.makespan <= halo.makespan

    def test_message_count_formula(self):
        # 2 boundary messages per interior processor pair per sweep.
        r = run_jacobi(32, 4, 3, "halo", model=FAST)
        assert r.messages == 3 * 2 * 3  # sweeps * (P-1 pairs) * 2 directions

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            run_jacobi(8, 2, 1, "bogus")


class TestWorkQueue:
    def test_dynamic_beats_static_under_skew(self):
        costs = make_job_costs(40, skew=6.0, seed=5)
        stat = run_workqueue(40, 5, scheme="static", costs=costs, model=FAST)
        dyn = run_workqueue(40, 5, scheme="dynamic", costs=costs, model=FAST)
        assert dyn.makespan < stat.makespan
        assert sum(dyn.jobs_per_worker.values()) == 40
        assert sum(stat.jobs_per_worker.values()) == 40

    @pytest.mark.msg_timing
    def test_uniform_costs_near_parity(self):
        costs = np.full(24, 100.0)
        stat = run_workqueue(24, 4, scheme="static", costs=costs, model=FAST)
        dyn = run_workqueue(24, 4, scheme="dynamic", costs=costs, model=FAST)
        # Dynamic pays per-job request latency; allow modest overhead.
        assert dyn.makespan < stat.makespan * 1.5

    def test_all_jobs_processed_exactly_once(self):
        costs = make_job_costs(17, skew=3.0)
        dyn = run_workqueue(17, 3, scheme="dynamic", costs=costs, model=FAST)
        assert sum(dyn.jobs_per_worker.values()) == 17
        assert dyn.stats.unclaimed_messages == 0
        assert dyn.stats.unmatched_receives == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_workqueue(4, 1)
        with pytest.raises(ValueError):
            run_workqueue(4, 3, scheme="magic")
        with pytest.raises(ValueError):
            run_workqueue(4, 3, costs=np.ones(3))


class TestMonitor:
    def test_schedule_followed(self):
        sched = [0, 0, 1, 2, 2, 3, 0]
        r = run_monitor(4, sched, model=FAST)
        assert r.monitored_pids() == sched
        assert len(r.stats.logs) == len(sched)

    @pytest.mark.msg_timing
    def test_ownership_only_messages(self):
        # Pure ownership transfers: header-only messages.
        sched = [0, 1, 2]
        r = run_monitor(3, sched, model=FAST)
        assert r.stats.total_messages == 2
        assert r.stats.total_bytes == 2 * 16

    def test_single_owner_no_traffic(self):
        r = run_monitor(3, [1, 1, 1], model=FAST)
        assert r.stats.total_messages == 0
        assert r.monitored_pids() == [1, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_monitor(2, [])
        with pytest.raises(ValueError):
            run_monitor(2, [5])
