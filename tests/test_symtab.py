"""Unit tests for the run-time symbol table (paper section 3.1)."""

import numpy as np
import pytest

from repro.core.errors import OwnershipError
from repro.core.sections import section
from repro.core.states import SegmentState
from repro.distributions import (
    Block,
    Collapsed,
    Distribution,
    ProcessorGrid,
    Segmentation,
)
from repro.runtime import MAXINT, MININT, RuntimeSymbolTable


@pytest.fixture
def seg_C():
    """C[1:4,1:8] (BLOCK, BLOCK) over 2x2, 2x1 segments (section 3.1)."""
    dist = Distribution(
        section((1, 4), (1, 8)), (Block(), Block()), ProcessorGrid((2, 2))
    )
    return Segmentation(dist, (2, 1))


@pytest.fixture
def p3(seg_C):
    """P3's table (pid 2) with C declared."""
    st = RuntimeSymbolTable(2)
    st.declare("C", seg_C)
    return st


class TestDeclaration:
    def test_entry_fields(self, p3):
        e = p3.entry("C")
        assert e.index == 1
        assert e.rank == 2
        assert e.global_shape == (4, 8)
        assert e.partitioning == "(BLOCK, BLOCK)"
        assert e.segment_shape == (2, 1)
        assert e.segment_count == 4

    def test_segments_accessible_initially(self, p3):
        assert all(
            d.state is SegmentState.ACCESSIBLE for d in p3.entry("C").segdescs
        )

    def test_storage_allocated(self, p3):
        # 4 segments x 2 elements x 8 bytes
        assert p3.memory.live_bytes == 64
        assert p3.memory.live_chunks == 4

    def test_double_declare_rejected(self, p3, seg_C):
        with pytest.raises(OwnershipError):
            p3.declare("C", seg_C)

    def test_unknown_variable(self, p3):
        from repro.core.errors import UnknownVariableError

        with pytest.raises(UnknownVariableError):
            p3.iown("Z", section(1, 1))
        assert "C" in p3 and "Z" not in p3


class TestIownSection31:
    """The paper's walk-through: P3 executes iown(C[1,5:7])."""

    def test_paper_example_true(self, p3):
        assert p3.iown("C", section(1, (5, 7)))

    def test_not_owned_elsewhere(self, p3):
        assert not p3.iown("C", section(1, (1, 3)))  # P1's columns
        assert not p3.iown("C", section((3, 4), (5, 8)))  # P4's rows

    def test_partial_overlap_false(self, p3):
        # Spans P3's and P1's columns.
        assert not p3.iown("C", section(1, (4, 6)))

    def test_whole_partition(self, p3):
        assert p3.iown("C", section((1, 2), (5, 8)))

    def test_other_processor_view(self, seg_C):
        p1 = RuntimeSymbolTable(0)
        p1.declare("C", seg_C)
        assert p1.iown("C", section(1, (1, 4)))
        assert not p1.iown("C", section(1, (5, 7)))


class TestBounds:
    def test_mylb_myub(self, p3):
        assert p3.mylb("C", 1) == 1 and p3.myub("C", 1) == 2
        assert p3.mylb("C", 2) == 5 and p3.myub("C", 2) == 8

    def test_restricted_query(self, p3):
        assert p3.mylb("C", 2, section((1, 2), (6, 8))) == 6

    def test_unowned_gives_sentinels(self, p3):
        assert p3.mylb("C", 1, section((3, 4), (1, 4))) == MAXINT
        assert p3.myub("C", 1, section((3, 4), (1, 4))) == MININT


class TestReadWrite:
    def test_roundtrip_across_segments(self, p3):
        sec = section((1, 2), (5, 8))
        vals = np.arange(8, dtype=np.float64).reshape(2, 4)
        p3.write("C", sec, vals)
        assert np.array_equal(p3.read("C", sec), vals)

    def test_subsection_read(self, p3):
        p3.write("C", section((1, 2), (5, 8)), np.arange(8).reshape(2, 4))
        got = p3.read("C", section(2, (5, 7, 2)))
        assert got.shape == (1, 2)
        assert list(got[0]) == [4.0, 6.0]

    def test_scalar_broadcast_write(self, p3):
        p3.write("C", section((1, 2), (5, 8)), 7.5)
        assert np.all(p3.read("C", section((1, 2), (5, 8))) == 7.5)

    def test_read_unowned_raises(self, p3):
        with pytest.raises(OwnershipError):
            p3.read("C", section(1, (1, 8)))

    def test_write_unowned_raises(self, p3):
        with pytest.raises(OwnershipError):
            p3.write("C", section((3, 4), (5, 8)), 0.0)


class TestValueReceiveStates:
    def test_begin_makes_transitional(self, p3):
        sec = section((1, 2), 5)
        p3.begin_value_receive("C", sec)
        assert p3.state_of("C", sec) is SegmentState.TRANSITIONAL
        assert not p3.accessible("C", sec)
        assert p3.iown("C", sec)  # still owned

    def test_complete_restores_accessible(self, p3):
        sec = section((1, 2), 5)
        p3.begin_value_receive("C", sec)
        p3.complete_value_receive("C", sec, np.array([[1.0], [2.0]]))
        assert p3.accessible("C", sec)
        assert list(p3.read("C", sec).ravel()) == [1.0, 2.0]

    def test_nested_receives(self, p3):
        sec = section((1, 2), 5)
        p3.begin_value_receive("C", sec)
        p3.begin_value_receive("C", sec)
        p3.complete_value_receive("C", sec, 1.0)
        assert p3.state_of("C", sec) is SegmentState.TRANSITIONAL
        p3.complete_value_receive("C", sec, 2.0)
        assert p3.accessible("C", sec)

    def test_receive_into_unowned_raises(self, p3):
        with pytest.raises(OwnershipError):
            p3.begin_value_receive("C", section(1, (1, 2)))

    def test_strict_read_of_transitional(self, seg_C):
        st = RuntimeSymbolTable(2, strict=True)
        st.declare("C", seg_C)
        st.begin_value_receive("C", section((1, 2), 5))
        with pytest.raises(OwnershipError):
            st.read("C", section((1, 2), 5))

    def test_nonstrict_read_of_transitional_allowed(self, p3):
        p3.begin_value_receive("C", section((1, 2), 5))
        # Unpredictable value, but no run-time check (paper section 2.1).
        p3.read("C", section((1, 2), 5))


class TestOwnershipTransfer:
    def test_release_whole_segment(self, p3):
        sec = section((1, 2), 5)
        p3.write("C", sec, np.array([[3.0], [4.0]]))
        before = p3.memory.live_bytes
        vals = p3.release_ownership("C", sec, with_value=True)
        assert list(vals.ravel()) == [3.0, 4.0]
        assert not p3.iown("C", sec)
        assert p3.entry("C").segment_count == 3
        assert p3.memory.live_bytes == before - 16

    def test_release_without_value(self, p3):
        assert p3.release_ownership("C", section((1, 2), 6), with_value=False) is None
        assert not p3.iown("C", section(1, 6))

    def test_release_splits_segment(self, p3):
        # Release only element (1,5) of the (1:2,5) segment.
        p3.write("C", section((1, 2), 5), np.array([[9.0], [8.0]]))
        p3.release_ownership("C", section(1, 5), with_value=True)
        assert not p3.iown("C", section(1, 5))
        assert p3.iown("C", section(2, 5))
        assert p3.read("C", section(2, 5))[0, 0] == 8.0
        assert p3.entry("C").segment_count == 4  # 3 intact + 1 split remainder

    def test_release_across_segments(self, p3):
        p3.release_ownership("C", section((1, 2), (5, 6)), with_value=False)
        assert p3.entry("C").segment_count == 2
        assert p3.owned_elements("C") == 4

    def test_release_unowned_raises(self, p3):
        with pytest.raises(OwnershipError):
            p3.release_ownership("C", section(1, (1, 2)), with_value=True)

    def test_release_transitional_raises(self, p3):
        p3.begin_value_receive("C", section((1, 2), 5))
        with pytest.raises(OwnershipError):
            p3.release_ownership("C", section((1, 2), 5), with_value=True)

    def test_acquire_then_complete(self, p3):
        sec = section((3, 4), 1)  # P2's territory, unowned by P3
        desc = p3.acquire_ownership("C", sec)
        assert desc.state is SegmentState.TRANSITIONAL
        assert p3.iown("C", sec)
        assert not p3.accessible("C", sec)
        p3.complete_ownership_receive("C", sec, np.array([[1.5], [2.5]]))
        assert p3.accessible("C", sec)
        assert list(p3.read("C", sec).ravel()) == [1.5, 2.5]

    def test_acquire_owned_raises(self, p3):
        with pytest.raises(OwnershipError):
            p3.acquire_ownership("C", section(1, 5))

    def test_ownership_only_receive_has_undefined_value(self, p3):
        sec = section((3, 4), 1)
        p3.acquire_ownership("C", sec)
        p3.complete_ownership_receive("C", sec, None)  # '<=': no value moved
        assert p3.accessible("C", sec)

    def test_complete_without_initiation_raises(self, p3):
        with pytest.raises(OwnershipError):
            p3.complete_ownership_receive("C", section((3, 4), 1), None)

    def test_roundtrip_release_acquire(self, p3):
        sec = section((1, 2), 5)
        p3.write("C", sec, 5.0)
        vals = p3.release_ownership("C", sec, with_value=True)
        p3.acquire_ownership("C", sec)
        p3.complete_ownership_receive("C", sec, vals)
        assert p3.accessible("C", sec)
        assert np.all(p3.read("C", sec) == 5.0)

    def test_storage_reuse_accounting(self, p3):
        """Section 2.6: released storage is reclaimed for acquired sections."""
        peak0 = p3.memory.peak_bytes
        p3.release_ownership("C", section((1, 2), (5, 8)), with_value=False)
        assert p3.memory.live_bytes == 0
        p3.acquire_ownership("C", section((3, 4), (1, 4)))
        assert p3.memory.live_bytes == 64
        assert p3.memory.peak_bytes == peak0  # footprint never grew


class TestFullyCollapsedDim:
    def test_star_block_table(self):
        dist = Distribution(
            section((1, 4), (1, 8)), (Collapsed(), Block()), ProcessorGrid((2, 2))
        )
        st = RuntimeSymbolTable(0)
        st.declare("A", Segmentation(dist, (2, 1)))
        assert st.entry("A").segment_count == 4
        assert st.iown("A", section((1, 4), (1, 2)))
        assert not st.iown("A", section((1, 4), (1, 3)))


class TestSegmentIndex:
    """The dim-0 interval index used by overlapping() past INDEX_THRESHOLD
    segments must give the same answers as the linear scan, and must be
    invalidated by every geometry change (release / acquire / declare)."""

    def make_table(self, extent=64, nprocs=1):
        dist = Distribution(
            section((1, extent)), (Block(),), ProcessorGrid((nprocs,))
        )
        st = RuntimeSymbolTable(0)
        st.declare("A", Segmentation(dist, (1,)))  # extent one-element segments
        return st

    def test_indexed_queries_match_linear_semantics(self):
        st = self.make_table(64)
        e = st.entry("A")
        assert e.segment_count > e.INDEX_THRESHOLD
        assert st.iown("A", section(17))
        assert st.iown("A", section((5, 60)))
        assert not st.iown("A", section((60, 70)))
        assert st.accessible("A", section((1, 64)))
        st.write("A", section(9), 4.5)
        assert st.read("A", section(9))[0] == 4.5
        # Strided query crosses many one-element segments.
        st.write("A", section((2, 64, 2)), np.arange(32.0))
        assert st.read("A", section((10, 12, 2))).tolist() == [4.0, 5.0]

    def test_index_invalidated_by_release_and_acquire(self):
        st = self.make_table(64)
        st.iown("A", section(1))  # force an index build
        st.release_ownership("A", section((17, 24)), with_value=False)
        assert not st.iown("A", section(20))
        assert st.iown("A", section((1, 16)))
        st.acquire_ownership("A", section((17, 24)), transitional=False)
        assert st.iown("A", section(20))
        assert st.accessible("A", section((1, 64)))

    def test_mylb_myub_with_index(self):
        st = self.make_table(64)
        st.release_ownership("A", section((1, 8)), with_value=False)
        assert st.mylb("A", 1) == 9
        assert st.myub("A", 1) == 64
