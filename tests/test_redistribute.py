"""Unit tests for redistribution planning (paper section 4 / Figure 4)."""

import pytest

from repro.core.errors import DistributionError
from repro.core.sections import section
from repro.distributions import (
    Block,
    Collapsed,
    Cyclic,
    Distribution,
    ProcessorGrid,
    Segmentation,
    plan_redistribution,
)


@pytest.fixture
def fft_dists():
    """(*,*,BLOCK) -> (*,BLOCK,*) for A[1:4,1:4,1:4] on 4 processors."""
    space = section((1, 4), (1, 4), (1, 4))
    grid = ProcessorGrid((4,))
    src = Distribution(space, (Collapsed(), Collapsed(), Block()), grid)
    dst = Distribution(space, (Collapsed(), Block(), Collapsed()), grid)
    return src, dst


class TestFFTRedistribution:
    def test_all_pairs_except_diagonal(self, fft_dists):
        src, dst = fft_dists
        plan = plan_redistribution(src, dst)
        pairs = set(plan.pairs())
        expected = {(i, j) for i in range(4) for j in range(4) if i != j}
        assert pairs == expected

    def test_element_conservation(self, fft_dists):
        src, dst = fft_dists
        plan = plan_redistribution(src, dst)
        # Each processor keeps its diagonal 4x1x1 pencil: 4*4=16 stay put.
        assert plan.stationary_elements == 16
        assert plan.total_elements_moved == 64 - 16

    def test_moved_sections_match_paper(self, fft_dists):
        # Processor p sends A[1:4, n, p+1] to processor n-1 for n != p+1.
        src, dst = fft_dists
        plan = plan_redistribution(src, dst)
        for m in plan.moves_from(0):
            assert m.section.dims[2].lo == m.section.dims[2].hi == 1
            n = m.section.dims[1].lo
            assert m.dst == n - 1

    def test_segment_granularity(self, fft_dists):
        src, dst = fft_dists
        seg = Segmentation(src, (4, 1, 1))
        plan = plan_redistribution(src, dst, segmentation=seg)
        # Each segment A[1:4, n, p] lands wholly on one receiver: whole
        # segments move, 3 per sender.
        assert plan.message_count == 12
        for m in plan.moves:
            assert m.section.shape == (4, 1, 1)


class TestGeneralPlans:
    def test_block_to_cyclic_1d(self):
        space = section((1, 8))
        grid = ProcessorGrid((2,))
        src = Distribution(space, (Block(),), grid)
        dst = Distribution(space, (Cyclic(),), grid)
        plan = plan_redistribution(src, dst)
        # P0 owns 1:4 then wants odds 1,3,5,7: sends {2,4}, receives {5,7}.
        sent = [m for m in plan.moves if m.src == 0]
        assert sum(m.elements for m in sent) == 2
        assert plan.total_elements_moved == 4
        assert plan.stationary_elements == 4

    def test_identity_plan_is_empty(self):
        space = section((1, 8))
        grid = ProcessorGrid((2,))
        d = Distribution(space, (Block(),), grid)
        plan = plan_redistribution(d, d)
        assert plan.message_count == 0
        assert plan.stationary_elements == 8

    def test_mismatched_spaces_rejected(self):
        grid = ProcessorGrid((2,))
        a = Distribution(section((1, 8)), (Block(),), grid)
        b = Distribution(section((1, 10)), (Block(),), grid)
        with pytest.raises(DistributionError):
            plan_redistribution(a, b)

    def test_mismatched_grids_rejected(self):
        a = Distribution(section((1, 8)), (Block(),), ProcessorGrid((2,)))
        b = Distribution(section((1, 8)), (Block(),), ProcessorGrid((4,)))
        with pytest.raises(DistributionError):
            plan_redistribution(a, b)

    def test_foreign_segmentation_rejected(self):
        grid = ProcessorGrid((2,))
        a = Distribution(section((1, 8)), (Block(),), grid)
        b = Distribution(section((1, 8)), (Cyclic(),), grid)
        seg_of_b = Segmentation(b, (2,))
        with pytest.raises(DistributionError):
            plan_redistribution(a, b, segmentation=seg_of_b)

    def test_segmented_plan_conserves_elements(self):
        space = section((1, 16))
        grid = ProcessorGrid((4,))
        src = Distribution(space, (Block(),), grid)
        dst = Distribution(space, (Cyclic(),), grid)
        exact = plan_redistribution(src, dst)
        segmented = plan_redistribution(src, dst, segmentation=Segmentation(src, (2,)))
        assert exact.total_elements_moved == segmented.total_elements_moved

    def test_moves_to_and_from(self, fft_dists):
        src, dst = fft_dists
        plan = plan_redistribution(src, dst)
        for pid in range(4):
            assert len(plan.moves_from(pid)) == 3
            assert len(plan.moves_to(pid)) == 3
