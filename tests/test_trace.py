"""Tests for event tracing and log collection."""

import numpy as np
import pytest

from repro.core.interp import Interpreter
from repro.core.ir.parser import parse_program
from repro.machine import MachineModel

FAST = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)

SRC = """
array A[1:2] dist (BLOCK) seg (1)

mypid == 1 : { A[1] -> {2} }
mypid == 2 : {
  A[2] <- A[1]
  await(A[2])
}
"""


class TestTrace:
    def run(self):
        it = Interpreter(parse_program(SRC), 2, model=FAST, trace=True)
        it.write_global("A", np.array([5.0, 0.0]))
        return it.run()

    @pytest.mark.msg_timing
    def test_event_kinds_present(self):
        stats = self.run()
        kinds = {e.kind for e in stats.trace}
        assert {"send", "recv-init", "recv-done", "done"} <= kinds

    @pytest.mark.msg_timing
    def test_send_precedes_matching_completion(self):
        stats = self.run()
        send_t = next(e.time for e in stats.trace if e.kind == "send")
        done_t = next(e.time for e in stats.trace if e.kind == "recv-done")
        assert send_t < done_t

    @pytest.mark.msg_timing
    def test_event_pids(self):
        stats = self.run()
        send = next(e for e in stats.trace if e.kind == "send")
        recv = next(e for e in stats.trace if e.kind == "recv-init")
        assert send.pid == 0 and recv.pid == 1

    def test_trace_renders(self):
        stats = self.run()
        text = str(stats.trace[0])
        assert "t=" in text and "P" in text

    def test_tracing_off_by_default(self):
        it = Interpreter(parse_program(SRC), 2, model=FAST)
        it.write_global("A", np.array([5.0, 0.0]))
        assert it.run().trace == []

    def test_await_block_awake_events(self):
        src = SRC.replace("mypid == 1 : { A[1] -> {2} }",
                          "mypid == 1 : { call work(500)\n  A[1] -> {2} }")
        it = Interpreter(parse_program(src), 2, model=FAST, trace=True)
        it.write_global("A", np.array([5.0, 0.0]))
        stats = it.run()
        kinds = [e.kind for e in stats.trace if e.pid == 1]
        assert "block" in kinds and "awake" in kinds
        # Blocked time counted as idle.
        assert stats.procs[1].idle_time > 400
