"""Differential validation of the ``proc`` backend against the simulator.

The real-parallelism backend (:mod:`repro.machine.procrt`) executes
compiled node programs on forked OS processes; the in-process simulator
is its semantic oracle.  This suite drives that claim from the outside:

* every *clean* program of the seeded fuzz battery
  (:mod:`tests.fuzz.gen_programs`) runs once on the plain ``msg``
  simulator and once on ``proc`` (which internally also runs — and
  cross-checks against — its own oracle pass); the two final machine
  states must hash identically (:func:`repro.machine.procrt.digest_symtabs`
  — the same sha256 the CLI prints as ``result sha256``);
* the binary wire format round-trips exactly: hypothesis-generated
  frames survive :func:`encode_frame`/:func:`decode_frame` bit-for-bit,
  inline and through shared-memory staging.

Only correct-by-construction programs go to ``proc`` here — the mutants'
verifier/engine agreement is ``tests/test_fuzz_differential.py``'s job,
and broken programs fail in the oracle pass before any fork happens.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DegradedRunError
from repro.core.interp import run_program
from repro.core.sections import Section, Triplet, section
from repro.distributions import (
    Block, Distribution, ProcessorGrid, Segmentation,
)
from repro.machine.effects import Compute, RecvInit, Send, WaitAccessible
from repro.machine.engine import Engine
from repro.machine.message import TransferKind
from repro.machine.model import MachineModel
from repro.machine.procrt import WORKER_ENV, digest_symtabs
from repro.machine.transport.proc import (
    Frame,
    SegmentRegistry,
    decode_frame,
    encode_frame,
    leaked_shm_segments,
    shm_name_prefix,
)

#: Acceptance floor is 20 clean programs; generate a little margin.
CLEAN_PROGRAMS = 24
BASE_SEED = 0


def _clean_battery():
    """The first ``CLEAN_PROGRAMS`` correct-by-construction programs."""
    from .fuzz.gen_programs import generate_battery

    # Each battery seed yields one good program plus up to three mutants,
    # so 6x oversampling always covers the clean quota.
    battery = generate_battery(6 * CLEAN_PROGRAMS, BASE_SEED)
    clean = [fp for fp in battery if fp.mutation is None]
    assert len(clean) >= CLEAN_PROGRAMS
    return clean[:CLEAN_PROGRAMS]


def _digest(fp, backend: str) -> str:
    interp, _stats = run_program(
        fp.source, fp.nprocs, strict=True, backend=backend
    )
    return digest_symtabs(interp.engine.symtabs)


@pytest.mark.parametrize(
    "fp", _clean_battery(), ids=lambda fp: fp.label.replace("/", ":")
)
def test_proc_matches_simulator(fp):
    """Fuzz-generated clean programs end in bit-identical machine state
    whether executed by the simulator or by real forked processes."""
    assert _digest(fp, "proc") == _digest(fp, "msg"), (
        f"proc/simulator divergence on:\n{fp.label}\n{fp.source}"
    )


def test_battery_covers_every_template_family():
    families = {fp.family for fp in _clean_battery()}
    assert families == {"halo", "ring", "pool", "gather-scatter", "translated"}


# --------------------------------------------------------------------- #
# worker-crash robustness (real SIGKILL, not a simulated fault)
# --------------------------------------------------------------------- #


class TestWorkerCrashRobustness:
    """A worker that actually dies (SIGKILL — no cleanup, no report) must
    degrade the run with the simulated crash path's exact shape, never
    hang the parent or leak shared memory."""

    def test_sigkilled_worker_degrades_run(self):
        eng = Engine(
            2, MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0),
            backend="proc",
        )
        dist = Distribution(section((1, 6)), (Block(),), ProcessorGrid((2,)))
        eng.declare("X", Segmentation(dist, (1,)))

        def prog(ctx):
            if ctx.pid == 1:
                # Only the forked worker carries the env marker: the
                # oracle pass runs this program clean, so the crash is
                # invisible to the simulator — the parent must detect
                # the real death via the worker's sentinel.
                if os.environ.get(WORKER_ENV) is not None:
                    os.kill(os.getpid(), signal.SIGKILL)
                ctx.symtab.write("X", section(4), 2.0)
                yield Send(TransferKind.VALUE, "X", section(4), dests=(0,))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(4),
                    into_var="X", into_sec=section(1),
                )
                yield Compute(5.0)
                yield WaitAccessible("X", section(1))

        with pytest.raises(DegradedRunError) as ei:
            eng.run(prog)
        err = ei.value
        assert err.crashed == (1,)
        assert "fail-stopped" in str(err)
        # Survivor checkpoint semantics: the killed pid is absent, the
        # survivor's table is attached (its state at abort time).
        assert sorted(err.checkpoint) == [0]
        assert "X" in err.checkpoint[0]
        # The SIGKILLed worker never unlinked anything; the parent's
        # prefix sweep must have reclaimed every segment of the run.
        assert not leaked_shm_segments()


# --------------------------------------------------------------------- #
# wire-format framing round-trip (hypothesis)
# --------------------------------------------------------------------- #


@st.composite
def _sections(draw):
    dims = []
    for _ in range(draw(st.integers(1, 3))):
        lo = draw(st.integers(-100, 100))
        size = draw(st.integers(1, 50))
        step = draw(st.integers(1, 5))
        dims.append(Triplet(lo, lo + (size - 1) * step, step))
    return Section(tuple(dims))


@st.composite
def _frames(draw):
    kind = draw(st.sampled_from(list(TransferKind)))
    if kind is TransferKind.OWNERSHIP:
        payload = None
    else:
        dtype = draw(st.sampled_from(["<f8", "<f4", "<i8", "<i4"]))
        shape = tuple(
            draw(st.integers(0, 6))
            for _ in range(draw(st.integers(1, 3)))
        )
        n = int(np.prod(shape)) if shape else 1
        payload = np.arange(n, dtype=np.dtype(dtype)).reshape(shape)
        payload += draw(st.integers(-1000, 1000))
    return Frame(
        kind=kind,
        var=draw(st.text(
            alphabet=st.characters(min_codepoint=65, max_codepoint=122),
            min_size=1, max_size=12,
        )),
        sec=draw(_sections()),
        src=draw(st.integers(0, 1000)),
        dst=draw(st.one_of(st.none(), st.integers(0, 1000))),
        ordinal=draw(st.integers(0, 2**40)),
        send_vt=float(draw(st.integers(0, 10**9))),
        arrive_vt=float(draw(st.integers(0, 10**9))),
        payload=payload,
    )


def _assert_same(a: Frame, b: Frame) -> None:
    assert (a.kind, a.var, a.sec, a.src, a.dst, a.ordinal) == (
        b.kind, b.var, b.sec, b.src, b.dst, b.ordinal
    )
    assert a.send_vt == b.send_vt and a.arrive_vt == b.arrive_vt
    if a.payload is None:
        assert b.payload is None
    else:
        assert b.payload is not None
        assert a.payload.dtype == b.payload.dtype
        assert a.payload.shape == b.payload.shape
        assert a.payload.tobytes() == b.payload.tobytes()


class TestFrameRoundTrip:
    @given(_frames())
    @settings(max_examples=150, deadline=None)
    def test_inline(self, frame):
        """Without a registry every payload rides inline in the frame."""
        _assert_same(frame, decode_frame(encode_frame(frame)))

    @given(_frames())
    @settings(max_examples=40, deadline=None)
    def test_shm_staged(self, frame):
        """Threshold 0 forces every payload through a shared-memory
        segment; decoding unlinks it, so nothing survives the round trip."""
        registry = SegmentRegistry(shm_name_prefix(run=987654))
        try:
            buf = encode_frame(frame, shm_threshold=0, registry=registry)
            _assert_same(frame, decode_frame(buf))
            leaked = [
                n for n in leaked_shm_segments()
                if n.startswith(registry.prefix)
            ]
            assert not leaked
        finally:
            registry.sweep()

    def test_zero_length_payload_inline(self):
        frame = Frame(
            kind=TransferKind.VALUE, var="A",
            sec=Section((Triplet(1, 1, 1),)),
            src=0, dst=None, ordinal=0, send_vt=0.0, arrive_vt=1.0,
            payload=np.zeros((0,), dtype=np.float64),
        )
        _assert_same(frame, decode_frame(encode_frame(frame)))

    def test_bad_magic_rejected(self):
        frame = Frame(
            kind=TransferKind.VALUE, var="A",
            sec=Section((Triplet(1, 2, 1),)),
            src=1, dst=2, ordinal=3, send_vt=4.0, arrive_vt=5.0,
            payload=np.ones(2),
        )
        buf = bytearray(encode_frame(frame))
        buf[:4] = b"NOPE"
        with pytest.raises(ValueError, match="bad proc frame"):
            decode_frame(bytes(buf))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
