"""Fault injection, reliable delivery, and degraded runs.

Covers the FaultModel/FaultSpec data layer, the analytic
ack/timeout/retransmit transport, the engine's raw-lossy and reliable
injection paths, scheduled stalls and fail-stop crashes, the enriched
deadlock report, seed plumbing, and the engine's reuse-after-raise
guarantee.
"""

import random

import pytest

from repro.core.errors import (
    BudgetExhaustedError,
    DeadlockError,
    DegradedRunError,
    OwnershipError,
    ProtocolError,
    TransportError,
)
from repro.core.sections import section
from repro.core.states import SegmentState
from repro.distributions import Block, Distribution, ProcessorGrid, Segmentation
from repro.machine import (
    Compute,
    Crash,
    Engine,
    FaultModel,
    FaultSpec,
    MachineModel,
    RecvInit,
    ReliableTransport,
    Send,
    Stall,
    TransferKind,
    WaitAccessible,
)
from repro.machine.message import MessageName

MODEL = MachineModel(o_send=1, o_recv=1, alpha=10, per_byte=0.0)


def linear_seg(extent: int, nprocs: int, seg: int = 1) -> Segmentation:
    dist = Distribution(
        section((1, extent)), (Block(),), ProcessorGrid((nprocs,))
    )
    return Segmentation(dist, (seg,))


def make_engine(nprocs=2, extent=None, **kw) -> Engine:
    eng = Engine(nprocs, MODEL, **kw)
    eng.declare("X", linear_seg(extent or nprocs, nprocs))
    return eng


def send_recv_prog(ctx):
    """P1 sends X[1] = 42 to P2, which receives it into X[2]."""
    if ctx.pid == 0:
        ctx.symtab.write("X", section(1), 42.0)
        yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
    else:
        yield RecvInit(
            TransferKind.VALUE, "X", section(1),
            into_var="X", into_sec=section(2),
        )
        yield WaitAccessible("X", section(2))


class TestFaultSpec:
    def test_probability_bounds_validated(self):
        with pytest.raises(ValueError, match="drop"):
            FaultSpec(drop=1.5)
        with pytest.raises(ValueError, match="duplicate"):
            FaultSpec(duplicate=-0.1)
        with pytest.raises(ValueError, match="max_jitter"):
            FaultSpec(max_jitter=-1.0)
        with pytest.raises(ValueError, match="delay"):
            FaultSpec(delay=0.5)  # no max_jitter

    def test_active(self):
        assert not FaultSpec().active
        assert FaultSpec(drop=0.1).active
        assert FaultSpec(delay=0.1, max_jitter=5.0).active

    def test_spec_for_per_tag_override(self):
        hot = FaultSpec(drop=0.5)
        fm = FaultModel(default=FaultSpec(), per_tag={"X": hot})
        assert fm.spec_for(MessageName("X", section(1))) is hot
        assert fm.spec_for(MessageName("Y", section(1))) is fm.default

    def test_has_proc_faults(self):
        assert not FaultModel.lossy(drop=0.9).has_proc_faults
        assert FaultModel(stalls=(Stall(0, 1.0, 2.0),)).has_proc_faults
        assert FaultModel(crashes=(Crash(0, 1.0),)).has_proc_faults

    def test_none_is_inert(self):
        fm = FaultModel.none()
        assert not fm.default.active and not fm.has_proc_faults


class TestReliableTransport:
    def test_protocol_constants_validated(self):
        with pytest.raises(ValueError, match="rto"):
            ReliableTransport(rto=0.0)
        with pytest.raises(ValueError, match="backoff"):
            ReliableTransport(backoff=0.5)
        with pytest.raises(ValueError, match="max_retries"):
            ReliableTransport(max_retries=-1)

    def test_clean_network_single_attempt(self):
        t = ReliableTransport()
        d = t.transmit(
            send_time=100.0, latency=10.0, ack_latency=2.0,
            spec=FaultSpec(), rng=random.Random(0),
        )
        assert d.delivery == 110.0
        assert d.attempts == 1 and d.retransmits == 0 and d.losses == 0
        assert d.acked_at == 112.0 and d.duplicates == ()

    def test_total_loss_returns_none(self):
        t = ReliableTransport(max_retries=3)
        d = t.transmit(
            send_time=0.0, latency=10.0, ack_latency=2.0,
            spec=FaultSpec(drop=1.0), rng=random.Random(0),
        )
        assert d.delivery is None
        assert d.attempts == 4 and d.losses == 4

    def test_retransmit_backoff_timing(self):
        # Deterministic fates: drop the first two data legs, deliver the
        # third, ack it.  Delivery = send + rto + rto*backoff + latency.
        class FakeRng:
            def __init__(self, rolls):
                self.rolls = list(rolls)

            def random(self):
                return self.rolls.pop(0)

        t = ReliableTransport(rto=100.0, backoff=2.0, max_retries=8)
        d = t.transmit(
            send_time=0.0, latency=10.0, ack_latency=2.0,
            spec=FaultSpec(drop=0.5),
            rng=FakeRng([0.0, 0.0, 0.9, 0.9]),  # drop, drop, deliver, ack
        )
        assert d.delivery == 100.0 + 200.0 + 10.0
        assert d.attempts == 3 and d.retransmits == 2 and d.losses == 2
        assert d.acked_at == d.delivery + 2.0

    def test_deterministic_given_seed(self):
        t = ReliableTransport(rto=50.0)
        spec = FaultSpec(drop=0.4, duplicate=0.3, delay=0.5, max_jitter=20.0)
        outs = [
            t.transmit(send_time=7.0, latency=10.0, ack_latency=2.0,
                       spec=spec, rng=random.Random(99))
            for _ in range(2)
        ]
        assert outs[0] == outs[1]


class TestRawLossyTransport:
    @pytest.mark.msg_timing
    def test_dropped_message_vanishes_and_deadlock_names_it(self):
        eng = make_engine(faults=FaultModel.lossy(drop=1.0))
        with pytest.raises(DeadlockError) as exc:
            eng.run(send_recv_prog)
        text = str(exc.value)
        assert "pending receive: value X[1]" in text
        assert "fault model dropped 1 message(s)" in text
        assert "raw transport" in text

    def test_duplicate_routes_twice(self):
        eng = make_engine(faults=FaultModel.lossy(duplicate=1.0))
        stats = eng.run(send_recv_prog)
        assert stats.msgs_duplicated == 1
        # The program posted one receive: the copy stays in the pool.
        assert stats.unclaimed_messages == 1
        assert eng.symtabs[1].read("X", section(2))[0] == 42.0

    def test_duplicate_mismatching_later_receive_is_protocol_error(self):
        # Paper section 2.7: a stray (here: duplicated) message matching a
        # receive with a different-extent destination is a protocol error.
        eng = Engine(2, MODEL, faults=FaultModel.lossy(duplicate=1.0))
        eng.declare("X", linear_seg(6, 2))

        def prog(ctx):
            if ctx.pid == 0:
                yield Compute(5.0)
                ctx.symtab.write("X", section(1), 1.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(4),
                )
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section((5, 6)),
                )
                yield WaitAccessible("X", section(4))

        with pytest.raises(ProtocolError, match="section mismatch"):
            eng.run(prog)

    def test_jitter_delays_arrival(self):
        base = make_engine()
        clean = base.run(send_recv_prog)
        eng = make_engine(
            seed=5, faults=FaultModel.lossy(delay=1.0, max_jitter=500.0)
        )
        jittered = eng.run(send_recv_prog)
        assert jittered.makespan > clean.makespan
        assert eng.symtabs[1].read("X", section(2))[0] == 42.0

    def test_same_seed_same_run_different_seed_differs(self):
        fm = FaultModel.lossy(delay=1.0, max_jitter=1000.0)
        runs = [
            make_engine(seed=3, faults=fm).run(send_recv_prog).makespan
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        other = make_engine(seed=4, faults=fm).run(send_recv_prog).makespan
        assert other != runs[0]


class TestReliableDelivery:
    def test_value_survives_heavy_loss(self):
        eng = make_engine(
            seed=1, faults=FaultModel.lossy(drop=0.6),
            reliable=ReliableTransport(rto=100.0),
        )
        stats = eng.run(send_recv_prog)
        assert eng.symtabs[1].read("X", section(2))[0] == 42.0
        assert stats.retransmits > 0
        assert stats.msgs_dropped == 0  # losses absorbed by the protocol

    def test_duplicates_suppressed(self):
        eng = make_engine(
            seed=1, faults=FaultModel.lossy(duplicate=1.0),
            reliable=ReliableTransport(),
        )
        stats = eng.run(send_recv_prog)
        assert stats.dups_suppressed >= 1
        assert stats.unclaimed_messages == 0
        assert eng.symtabs[1].read("X", section(2))[0] == 42.0

    def test_clean_network_acks_counted(self):
        eng = make_engine(seed=0, reliable=ReliableTransport())
        stats = eng.run(send_recv_prog)
        assert stats.acks == 1
        assert stats.retransmits == 0

    def test_transport_error_attributes(self):
        eng = make_engine(
            seed=1, faults=FaultModel.lossy(drop=1.0),
            reliable=ReliableTransport(max_retries=2),
        )
        with pytest.raises(TransportError) as exc:
            eng.run(send_recv_prog)
        err = exc.value
        assert err.attempts == 3
        assert err.src == 0 and err.dst == 1
        assert err.name == MessageName("X", section(1))
        assert "retransmit budget 2 exhausted" in str(err)

    def test_reliable_implies_inert_fault_model(self):
        eng = make_engine(reliable=ReliableTransport())
        assert eng.faults is not None and not eng.faults.default.active


class TestProcessorFaults:
    def test_stall_loses_time(self):
        eng = Engine(2, MODEL, faults=FaultModel(
            stalls=(Stall(pid=0, at=0.0, duration=100.0),)
        ))

        def prog(ctx):
            yield Compute(10.0)

        stats = eng.run(prog)
        assert stats.procs[0].stall_time == 100.0
        assert stats.procs[0].finish_time == 110.0
        assert stats.procs[1].finish_time == 10.0
        assert stats.total_stall_time == 100.0

    def test_crash_degrades_run_with_checkpoint(self):
        eng = make_engine(
            nprocs=3, extent=3,
            faults=FaultModel(crashes=(Crash(pid=1, at=5.0),)),
        )

        def prog(ctx):
            ctx.symtab.write("X", section(ctx.pid + 1), float(ctx.pid))
            yield Compute(10.0)
            yield Compute(10.0)

        with pytest.raises(DegradedRunError) as exc:
            eng.run(prog)
        err = exc.value
        assert err.crashed == (1,)
        assert sorted(err.checkpoint) == [0, 2]
        assert err.checkpoint[0].read("X", section(1))[0] == 0.0
        assert err.stats is not None and err.stats.crashed == (1,)
        # The victim stops at the effect boundary where the crash fired.
        assert err.stats.procs[1].finish_time == 10.0
        assert err.stats.procs[0].finish_time == 20.0
        assert "P2 fail-stopped" in str(err)

    def test_blocked_straggler_crashes_at_quiescence_and_purges_receives(self):
        eng = make_engine(faults=FaultModel(crashes=(Crash(pid=1, at=0.5),)))

        def prog(ctx):
            if ctx.pid == 0:
                yield Compute(1.0)  # finishes; sends nothing
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(2),
                )
                yield WaitAccessible("X", section(2))

        with pytest.raises(DegradedRunError) as exc:
            eng.run(prog)
        assert exc.value.crashed == (1,)
        # The dead node's posted receive was withdrawn, not left dangling.
        assert exc.value.stats.unmatched_receives == 0

    def test_strict_read_of_crashed_owner_is_ownership_error(self):
        eng = Engine(
            2, MODEL, strict=True,
            faults=FaultModel(crashes=(Crash(pid=1, at=0.0),)),
        )
        eng.declare("X", linear_seg(2, 2))

        def prog(ctx):
            ctx.symtab.write("X", section(ctx.pid + 1), 7.0)
            yield Compute(1.0)

        with pytest.raises(DegradedRunError):
            eng.run(prog)
        # Crashed data is transitional — unpredictable in the paper's
        # terms; strict mode refuses to read it.
        with pytest.raises(OwnershipError, match="transitional"):
            eng.symtabs[1].read("X", section(2))
        assert (
            eng.symtabs[1].state_of("X", section(2))
            is SegmentState.TRANSITIONAL
        )

    def test_crash_discards_undelivered_completions(self):
        # P2 claims a message (injection time) but crashes before its
        # completion applies: the payload is lost with the processor.
        eng = make_engine(faults=FaultModel(crashes=(Crash(pid=1, at=50.0),)))

        def prog(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 42.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
            else:
                yield RecvInit(
                    TransferKind.VALUE, "X", section(1),
                    into_var="X", into_sec=section(2),
                )
                yield Compute(100.0)  # crash fires before the wait
                yield WaitAccessible("X", section(2))

        with pytest.raises(DegradedRunError) as exc:
            eng.run(prog)
        assert exc.value.crashed == (1,)
        assert 1 not in exc.value.checkpoint


class TestSeedPlumbing:
    def test_seed_recorded_in_stats_and_summary(self):
        eng = make_engine(seed=42)
        stats = eng.run(send_recv_prog)
        assert stats.seed == 42
        assert "seed: 42" in stats.summary().splitlines()[0]

    def test_faults_line_only_when_faults_fired(self):
        clean = make_engine().run(send_recv_prog)
        assert "faults:" not in clean.summary()
        eng = make_engine(
            seed=1, faults=FaultModel.lossy(drop=0.6),
            reliable=ReliableTransport(rto=100.0),
        )
        summary = eng.run(send_recv_prog).summary()
        assert "faults:" in summary and "retransmits=" in summary


class TestEngineReuseAfterRaise:
    """A run that raises must leave the engine reusable (regression)."""

    def deadlock_prog(self, ctx):
        if ctx.pid == 1:
            yield RecvInit(
                TransferKind.VALUE, "X", section(1),
                into_var="X", into_sec=section(2),
            )
            yield WaitAccessible("X", section(2))

    def good_prog(self, ctx):
        if ctx.pid == 0:
            ctx.symtab.write("Y", section(1), 9.0)
            yield Send(TransferKind.VALUE, "Y", section(1), dests=(1,))
        else:
            yield RecvInit(
                TransferKind.VALUE, "Y", section(1),
                into_var="Y", into_sec=section(2),
            )
            yield WaitAccessible("Y", section(2))

    def make_two_var_engine(self, **kw):
        eng = Engine(2, MODEL, **kw)
        eng.declare("X", linear_seg(2, 2))
        eng.declare("Y", linear_seg(2, 2))
        return eng

    def assert_clean_second_run(self, eng):
        stats = eng.run(self.good_prog)
        assert eng.symtabs[1].read("Y", section(2))[0] == 9.0
        assert stats.unclaimed_messages == 0
        assert stats.unmatched_receives == 0

    def test_reusable_after_deadlock(self):
        eng = self.make_two_var_engine()
        with pytest.raises(DeadlockError):
            eng.run(self.deadlock_prog)
        self.assert_clean_second_run(eng)

    def test_reusable_after_transport_error(self):
        eng = self.make_two_var_engine(
            seed=1, faults=FaultModel(per_tag={"X": FaultSpec(drop=1.0)}),
            reliable=ReliableTransport(max_retries=1),
        )

        def doomed(ctx):
            if ctx.pid == 0:
                ctx.symtab.write("X", section(1), 1.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))

        with pytest.raises(TransportError):
            eng.run(doomed)
        # "Y" traffic is fault-free under the per-tag model.
        self.assert_clean_second_run(eng)

    def test_reusable_after_budget_exhaustion(self):
        eng = self.make_two_var_engine(max_effects=3)

        def runaway(ctx):
            while True:
                yield Compute(1.0)

        with pytest.raises(BudgetExhaustedError):
            eng.run(runaway)
        eng.max_effects = 10_000
        self.assert_clean_second_run(eng)

    def test_reusable_after_degraded_run(self):
        eng = self.make_two_var_engine(
            faults=FaultModel(crashes=(Crash(pid=1, at=0.0),))
        )

        def prog(ctx):
            yield Compute(1.0)

        with pytest.raises(DegradedRunError):
            eng.run(prog)
        eng.faults = None  # the next run simulates a repaired machine
        self.assert_clean_second_run(eng)


class TestDeadlockReport:
    @pytest.mark.msg_timing
    def test_report_lists_pending_tags_and_pool(self):
        eng = Engine(2, MODEL)
        eng.declare("X", linear_seg(4, 2))

        def prog(ctx):
            if ctx.pid == 0:
                # Sends a tag nobody receives...
                ctx.symtab.write("X", section(1), 1.0)
                yield Send(TransferKind.VALUE, "X", section(1), dests=(1,))
            else:
                # ...while waiting on a tag nobody sends.
                yield RecvInit(
                    TransferKind.VALUE, "X", section(2),
                    into_var="X", into_sec=section(3),
                )
                yield WaitAccessible("X", section(3))

        with pytest.raises(DeadlockError) as exc:
            eng.run(prog)
        text = str(exc.value)
        assert "P2 at t=" in text and "awaiting X[3]" in text
        assert "pending receive: value X[2] (into X[3]" in text
        assert "unclaimed message pool:" in text
        assert "msg#" in text and "value X[1]" in text
        assert "1 unclaimed messages, 1 unmatched receives" in text
