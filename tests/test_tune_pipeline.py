"""The staged tuning pipeline's own invariants (beyond test_tune's
end-to-end contract):

* lazy space enumeration is exactly the sorted eager enumeration, for
  arbitrary seeded subspaces (hypothesis);
* :class:`SpaceSpec` counts what its generators yield;
* same-seed searches are bit-reproducible for any shard count — the
  canonical result document and the BENCH row derived from it are
  byte-identical across ``shards in {1, 2, 4}``;
* prefilter demotions carry the candidate and the verifier's report.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fft3d import fft3d_source
from repro.core.ir.parser import parse_program
from repro.tune import (
    KnobSpec, SpaceSpec, enumerate_layouts, iter_layouts, tune,
)
from repro.tune.rewrite import detect_phases

N, P = 8, 4

SPECS = ("*", "BLOCK", "CYCLIC", "CYCLIC(2)")
SEGS = ("coarse", "pencil", "slab")


def _decl(extents):
    dims = ",".join(f"1:{e}" for e in extents)
    src = (f"array A[{dims}] dist (*, *, BLOCK) "
           f"seg ({extents[0]},1,1) dtype complex128\n")
    return parse_program(src).array_decls()[0]


@st.composite
def subspaces(draw):
    extents = tuple(draw(st.sampled_from([2, 3, 4, 8])) for _ in range(3))
    nprocs = draw(st.sampled_from([2, 4]))
    specs = tuple(draw(st.sets(st.sampled_from(SPECS), min_size=1)))
    segs = tuple(draw(st.sets(st.sampled_from(SEGS), min_size=1)))
    max_dist = draw(st.sampled_from([None, 1, 2]))
    idle = draw(st.booleans())
    collapsed = tuple(draw(st.sets(st.integers(0, 2), max_size=1)))
    return extents, nprocs, specs, segs, max_dist, idle, collapsed


class TestLazyEagerParity:
    @settings(max_examples=30, deadline=None)
    @given(subspaces())
    def test_iter_layouts_is_sorted_eager_enumeration(self, sub):
        extents, nprocs, specs, segs, max_dist, idle, collapsed = sub
        kw = dict(
            specs=specs, max_dist_dims=max_dist, seg_choices=segs,
            allow_idle_procs=idle, collapsed_axes=collapsed,
        )
        decl = _decl(extents)
        lazy = list(iter_layouts(decl, nprocs, **kw))
        eager = enumerate_layouts(decl, nprocs, **kw)
        assert lazy == eager

    def test_space_spec_counts_match_generators(self):
        program = parse_program(fft3d_source(N, P, 0))
        phases = detect_phases(program)
        decl = program.array_decls()[0]
        space = SpaceSpec(decl, P, tuple(p.axis for p in phases))
        paths = sum(1 for _ in space.iter_paths())
        assert paths == space.path_count()
        assert space.size() == paths * len(space.knob_points())
        for i, size in enumerate(space.layer_sizes):
            assert size == len(list(space.layer(i)))

    def test_knob_axis_dropped_without_collectives(self):
        ks = KnobSpec()
        plain = ks.points(has_collectives=False)
        coll = ks.points(has_collectives=True)
        assert all(p.coll_schedule is None for p in plain)
        assert len(coll) == len(plain) * len(ks.coll_schedules)


class TestShardDeterminism:
    """Same seed, same program: the shard count must be invisible in the
    result — the merge is by submission order, never completion order."""

    @pytest.fixture(scope="class")
    def docs(self, tmp_path_factory):
        src = fft3d_source(N, P, 0)
        out = {}
        for shards in (1, 2, 4):
            store = tmp_path_factory.mktemp(f"store-{shards}")
            res = tune(src, P, shards=shards, store=str(store))
            out[shards] = res.canonical_doc()
        return out

    def test_canonical_docs_byte_identical(self, docs):
        blobs = {
            s: json.dumps(d, sort_keys=True).encode()
            for s, d in docs.items()
        }
        assert blobs[1] == blobs[2] == blobs[4]

    def test_bench_rows_byte_identical(self, docs):
        # The BENCH row is the canonical doc plus per-run context; the
        # deterministic portion must not vary with the shard count.
        rows = {
            s: json.dumps(
                {**d, "n": N, "nprocs": P}, sort_keys=True
            ).encode()
            for s, d in docs.items()
        }
        assert rows[1] == rows[2] == rows[4]

    def test_sharded_matches_in_process(self, docs, tmp_path):
        res = tune(fft3d_source(N, P, 0), P)
        assert json.dumps(res.canonical_doc(), sort_keys=True) == \
            json.dumps(docs[1], sort_keys=True)
