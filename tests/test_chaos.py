"""The chaos harness (`repro chaos`): reliable delivery must make fault
schedules invisible to program results, and a seed must make them
bit-reproducible.  Heavier P=64 coverage lives in
benchmarks/test_bench_p2_chaos.py; this file keeps tier-1 fast."""

from repro.apps.chaos import (
    crash_schedule,
    default_schedules,
    format_chaos,
    run_chaos,
)
from repro.cli import main


class TestRunChaos:
    def test_battery_passes_at_p8(self):
        report = run_chaos(nprocs_list=(8,), jobs_per_proc=4)
        assert report["ok"]
        names = {c["schedule"] for c in report["cases"]}
        assert names == {n for n, _ in default_schedules()}
        # Both programs ran both ways, under every schedule.
        assert len(report["cases"]) == 2 * len(default_schedules())
        assert all(c["ok"] for c in report["cases"])
        assert all(d["ok"] for d in report["determinism"])

    def test_report_is_bit_deterministic(self):
        kw = dict(
            programs=("workqueue",), nprocs_list=(4,),
            seed=7, jobs_per_proc=3,
        )
        assert run_chaos(**kw) == run_chaos(**kw)

    def test_different_seed_changes_fault_timings(self):
        kw = dict(programs=("workqueue",), nprocs_list=(4,), jobs_per_proc=3)
        a = run_chaos(seed=7, **kw)
        b = run_chaos(seed=8, **kw)
        assert a["ok"] and b["ok"]  # results transparent either way
        assert any(
            ca["makespan"] != cb["makespan"]
            for ca, cb in zip(a["cases"], b["cases"])
        )

    def test_crash_path_degrades_gracefully(self):
        report = run_chaos(
            programs=("workqueue",), nprocs_list=(4,),
            jobs_per_proc=2, include_crash=True,
        )
        assert report["ok"]
        (d,) = report["degraded"]
        assert d["ok"] and d["crashed"] == [3]
        assert d["survivors"] == 3

    def test_crash_schedule_targets_last_pid(self):
        fm = crash_schedule(8)
        assert fm.crashes[0].pid == 7

    def test_format_chaos_renders(self):
        report = run_chaos(
            programs=("workqueue",), nprocs_list=(4,),
            jobs_per_proc=2, include_crash=True,
        )
        text = format_chaos(report)
        assert "chaos: OK" in text
        assert "determinism workqueue@4" in text
        assert "degraded gracefully" in text


class TestChaosCli:
    def test_cli_ok_exit_zero(self, capsys):
        rc = main([
            "chaos", "--seed", "7", "--procs", "4",
            "--programs", "workqueue", "--jobs-per-proc", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos: OK" in out

    def test_cli_json_report(self, tmp_path, capsys):
        out_file = tmp_path / "chaos.json"
        rc = main([
            "chaos", "--seed", "7", "--procs", "4",
            "--programs", "workqueue", "--jobs-per-proc", "2",
            "--json", str(out_file),
        ])
        assert rc == 0
        import json

        report = json.loads(out_file.read_text())
        assert report["ok"] and report["seed"] == 7


class TestChaosBackendTransparency:
    """Reliable delivery must be transparent under *both* transfer
    bindings: the same fault schedules replay over the shared-address
    prefetch/poststore transport with results matching the fault-free
    run, and a fixed seed stays bit-reproducible per backend."""

    import pytest as _pytest

    @_pytest.mark.parametrize("backend", ["msg", "shmem"])
    def test_battery_passes_on_backend(self, backend):
        report = run_chaos(
            programs=("workqueue",), nprocs_list=(4,),
            seed=7, jobs_per_proc=3, backend=backend,
        )
        assert report["ok"], backend
        assert report["backend"] == backend
        assert all(c["ok"] for c in report["cases"])
        assert all(d["ok"] for d in report["determinism"])

    @_pytest.mark.parametrize("backend", ["msg", "shmem"])
    def test_seeded_replay_is_bit_identical_per_backend(self, backend):
        kw = dict(
            programs=("workqueue",), nprocs_list=(4,),
            seed=7, jobs_per_proc=2, backend=backend,
        )
        assert run_chaos(**kw) == run_chaos(**kw)

    def test_cli_accepts_backend_flag(self, capsys):
        rc = main([
            "chaos", "--seed", "7", "--procs", "4",
            "--programs", "workqueue", "--jobs-per-proc", "2",
            "--backend", "shmem",
        ])
        assert rc == 0
        assert "chaos: OK" in capsys.readouterr().out
