"""Unit tests for the static communication-safety verifier."""

import pytest

from repro.core.analysis.verify_comm import (
    CommReport, CommVerificationError, Finding, verify_communication,
)
from repro.core.ir.parser import parse_program
from repro.core.opt.passmanager import optimize
from repro.core.translate import translate


def verify(src: str, nprocs: int = 4, **kw) -> CommReport:
    return verify_communication(parse_program(src), nprocs, **kw)


def codes(report: CommReport) -> set[str]:
    return {f.code for f in report.findings}


DECLS = """
array A[1:8] dist (BLOCK) seg (2)
array B[1:8] dist (BLOCK) seg (2)
"""


# --------------------------------------------------------------------- #
# report / finding API
# --------------------------------------------------------------------- #


class TestReportAPI:
    def test_clean_report(self):
        r = verify(DECLS + "mypid == 1 : { A[1] = A[1] + 1 }")
        assert r.ok and r.clean and r.complete
        assert r.errors == [] and r.warnings == []
        assert "0 error(s), 0 warning(s)" in r.format()
        assert "clean" in r.format()

    def test_finding_format_carries_code_loc_pid(self):
        r = verify(DECLS + "mypid == 1 : { A[5] = 0 }")
        (f,) = r.errors
        assert isinstance(f, Finding)
        assert f.code == "unowned-write" and f.severity == "error"
        assert f.pid1 == 1
        text = f.format()
        assert "error[unowned-write]" in text and "[P1]" in text
        assert "A[5] = 0" in text  # IL location: the statement path

    def test_errors_sort_before_warnings(self):
        r = verify(DECLS + """
mypid == 1 : {
  B[5] <- A[1]
  B[5] = B[5] + 1
}
""")
        assert not r.ok
        sev = [f.severity for f in r.findings]
        assert sev == sorted(sev)  # "error" < "warning"

    def test_duplicate_findings_fold_with_count(self):
        r = verify(DECLS + """
scalar i
do i = 1, 3
  mypid == 1 : { A[5] = A[5] + 1 }
enddo
""")
        write = [f for f in r.errors if f.code == "unowned-write"]
        assert len(write) == 1 and write[0].count == 3


# --------------------------------------------------------------------- #
# one test per finding class
# --------------------------------------------------------------------- #


class TestFindingClasses:
    def test_deadlock_no_sender(self):
        r = verify(DECLS + """
mypid == 2 : {
  A[1:2] <=-
  await(A[1:2]) : { A[1] = A[1] + 1 }
}
""")
        assert "deadlock" in codes(r) and not r.ok

    def test_stale_read_without_await(self):
        r = verify(DECLS + """
mypid == 1 : { A[1:2] -> {2} }
mypid == 2 : {
  B[3] <- A[1]
  A[3] = A[3] + B[3]
}
""")
        assert "stale-read" in codes(r)

    def test_size_mismatch(self):
        r = verify(DECLS + """
mypid == 1 : { A[1:2] -> {2} }
mypid == 2 : {
  B[3] <- A[1:2]
  await(B[3]) : { A[3] = B[3] }
}
""")
        assert "size-mismatch" in codes(r)

    def test_ownership_multicast(self):
        r = verify(DECLS + "mypid == 1 : { A[1:2] -=> {2,3} }")
        assert "ownership-multicast" in codes(r)

    def test_unowned_read(self):
        r = verify(DECLS + "mypid == 1 : { A[1] = A[1] + B[5] }")
        assert codes(r) == {"unowned-read"}

    def test_unowned_write(self):
        r = verify(DECLS + "mypid == 2 : { A[1] = 0 }")
        assert codes(r) == {"unowned-write"}

    def test_send_of_unowned_value(self):
        r = verify(DECLS + "mypid == 2 : { A[1] -> {3} }")
        assert "send-unowned" in codes(r)

    def test_bad_destination(self):
        r = verify(DECLS + "mypid == 1 : { A[1] -> {9} }")
        assert "bad-destination" in codes(r)

    def test_acquire_of_owned_section(self):
        r = verify(DECLS + "mypid == 1 : { A[1:2] <=- }")
        assert "acquire-overlap" in codes(r)

    def test_unmatched_send(self):
        r = verify(DECLS + "mypid == 1 : { A[1] -> {2} }")
        assert "unmatched-send" in codes(r)

    def test_unmatched_receive(self):
        r = verify(DECLS + "mypid == 2 : { B[3] <- A[1] }")
        assert "unmatched-receive" in codes(r)

    def test_unknown_variable(self):
        r = verify(DECLS + "mypid == 1 : { Z[1] = 0 }")
        assert "unknown-variable" in codes(r)

    def test_mixed_matching_warning(self):
        r = verify(DECLS + """
mypid == 1 : {
  A[1] ->
  A[1] -> {3}
}
mypid == 2 : {
  B[3] <- A[1]
  await(B[3]) : { B[3] = B[3] }
}
mypid == 3 : {
  B[5] <- A[1]
  await(B[5]) : { B[5] = B[5] }
}
""")
        assert "mixed-matching" in {f.code for f in r.warnings}

    def test_data_dependent_rule_waives(self):
        r = verify(DECLS + "A[mypid] > 0 : { A[1] = A[1] + 1 }")
        assert "data-dependent-rule" in {f.code for f in r.warnings}
        assert r.ok  # conservative warning, not an error

    def test_symbolic_loop_waives(self):
        r = verify(DECLS + """
scalar i
scalar k
mypid == 1 : { k = A[1] }
do i = 1, k
  mypid == 1 : { A[1] = A[1] + 1 }
enddo
""")
        assert r.ok and "symbolic-loop" in {f.code for f in r.warnings}

    def test_budget_exhausted_incomplete(self):
        r = verify(DECLS + """
scalar i
do i = 1, 1000
  mypid == 1 : { A[1] = A[1] + 1 }
enddo
""", max_events=100)
        assert not r.complete and not r.clean
        assert "budget-exhausted" in {f.code for f in r.warnings}


class TestConservatismWaivers:
    def test_waived_transfer_demotes_deadlock(self):
        """A deadlock that involves a skipped data-dependent region is a
        warning (possible-deadlock), not an error: the verifier cannot
        prove the matching send never runs."""
        r = verify(DECLS + """
if A[mylb(A[*], 1)] > 0 then
  mypid == 1 : { A[1] -> {2} }
endif
mypid == 2 : {
  B[3] <- A[1]
  await(B[3]) : { B[3] = B[3] + 1 }
}
""")
        assert r.ok and not r.clean
        warn = {f.code for f in r.warnings}
        assert "data-dependent-branch" in warn
        assert "possible-deadlock" in warn
        assert "deadlock" not in codes(r)


# --------------------------------------------------------------------- #
# integration: apps, translator, optimizer, tuner
# --------------------------------------------------------------------- #


class TestWholePrograms:
    def test_translated_programs_clean(self):
        seq = """
array A[1:8] dist (BLOCK) seg (1)
array B[1:8] dist (CYCLIC) seg (1)
scalar n = 8

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""
        for strategy in ("owner-computes", "migrate"):
            spmd = translate(parse_program(seq), 4, strategy=strategy)
            r = verify_communication(spmd, 4)
            assert r.clean, (strategy, r.format())

    def test_jacobi_halo_clean(self):
        from repro.apps.jacobi import jacobi_source

        prog = jacobi_source(8, 4, sweeps=2, variant="halo")
        if isinstance(prog, str):
            prog = parse_program(prog)
        r = verify_communication(prog, 4)
        assert r.clean, r.format()

    def test_fft3d_stage_clean(self):
        from repro.apps.fft3d import fft3d_source

        r = verify(fft3d_source(4, 4, stage=1), 4)
        assert r.clean, r.format()

    def test_workqueue_source_clean(self):
        from repro.apps.workqueue import workqueue_source

        r = verify(workqueue_source(6, 4), 4)
        assert r.clean, r.format()

    def test_workqueue_source_validates_args(self):
        from repro.apps.workqueue import workqueue_source

        with pytest.raises(ValueError):
            workqueue_source(3, 1)
        with pytest.raises(ValueError):
            workqueue_source(0, 4)

    def test_optimize_verify_comm_clean_appends_report(self):
        src = DECLS + "mypid == 1 : { A[1] = A[1] + 1 }"
        res = optimize(parse_program(src), 4, level=1, verify_comm=True)
        assert any("communication verification" in ln for ln in res.reports)

    def test_optimize_verify_comm_raises_on_bad(self):
        src = DECLS + "mypid == 2 : { A[1] = 0 }"
        with pytest.raises(CommVerificationError) as ei:
            optimize(parse_program(src), 4, level=0, verify_comm=True)
        assert not ei.value.report.ok
        assert "unowned-write" in {f.code for f in ei.value.report.errors}


class TestCheckCLI:
    BAD = DECLS + """
mypid == 1 : {
  B[5] <- A[1]
  B[5] = B[5] + 1
}
"""

    def test_check_apps_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["check", "jacobi", "fft3d", "workqueue",
                     "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "jacobi" in out and "workqueue" in out

    def test_check_bad_file_exit_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        p = tmp_path / "bad.xdp"
        p.write_text(self.BAD)
        assert main(["check", str(p), "--nprocs", "4"]) == 1
        out = capsys.readouterr().out
        assert "recv-into-unowned" in out

    def test_compile_verify_comm_flag(self, tmp_path, capsys):
        from repro.cli import main

        p = tmp_path / "bad.xdp"
        p.write_text(self.BAD)
        assert main(["compile", str(p), "-O", "0", "--verify-comm"]) == 1


class TestReferenceAndUniversalChecks:
    """The malformed-reference and universal-variable finding classes."""

    UNI = DECLS + "array U[1:4] universal\n"

    def test_send_universal(self):
        r = verify(self.UNI + "mypid == 1 : { U[1] -> {2} }")
        assert "send-universal" in codes(r)

    def test_recv_universal(self):
        r = verify(self.UNI + "mypid == 2 : { U[1] <- A[1] }")
        assert "recv-universal" in codes(r)

    def test_intrinsic_universal(self):
        r = verify(self.UNI + "iown(U[1]) : { A[1] = A[1] }")
        assert "intrinsic-universal" in codes(r)

    def test_rank_mismatch(self):
        r = verify(DECLS + "mypid == 1 : { A[1,2] = 0 }")
        assert "rank-mismatch" in codes(r)

    def test_empty_section(self):
        r = verify(DECLS + "mypid == 1 : { A[3:2] = 0 }")
        assert "empty-section" in codes(r)

    def test_zero_step_loop(self):
        r = verify(DECLS + """
scalar i
do i = 1, 4, 0
  mypid == 1 : { A[1] = A[1] + 1 }
enddo
""")
        assert "zero-step" in codes(r)

    def test_undefined_scalar(self):
        r = verify(DECLS + "mypid == 1 : { A[1] = A[1] + q }")
        assert "undefined-scalar" in codes(r)

    def test_array_used_without_subscripts(self):
        r = verify(DECLS + "mypid == 1 : { A[1] = A[1] + B }")
        assert "unknown-variable" in codes(r)

    def test_unresolved_destination_waives(self):
        r = verify(DECLS + "mypid == 1 : { A[1] -> {B[1]} }")
        assert r.ok
        assert "unresolved-destination" in {f.code for f in r.warnings}

    def test_unresolved_read_subscript(self):
        r = verify(DECLS + "mypid == 1 : { A[1] = A[B[1]] }")
        assert "unresolved-read" in {f.code for f in r.warnings}

    def test_blocked_forever_on_partial_ownership(self):
        """An owner send of a section the pid only partly owns can never
        become accessible: flagged as blocked-forever, not a deadlock."""
        r = verify(DECLS + "mypid == 1 : { A[1:3] => {2} }")
        assert "blocked-forever" in codes(r) and not r.ok
