#!/usr/bin/env python3
"""Dynamic load balancing with XDP's unspecified-recipient sends
(paper section 2.7).

A master owns a one-element job descriptor and issues a sequence of value
sends of it; idle workers claim jobs by initiating receives for the same
section name.  The comparison against a fixed round-robin schedule shows
the pool adapting to skewed job costs — "depending on the load at
run-time, there might be multiple outstanding sends or outstanding
receives."

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro.apps.workqueue import make_job_costs, run_workqueue
from repro.machine import MachineModel

NJOBS = 48
NPROCS = 5  # 1 master + 4 workers


def report(result, costs):
    per_worker_cost = {w: 0.0 for w in result.jobs_per_worker}
    print(f"  scheme={result.scheme:<8} makespan={result.makespan:10.1f}")
    print(f"    jobs per worker : {result.jobs_per_worker}")
    busy = [f"P{p.pid + 1}:{p.compute_time:.0f}" for p in result.stats.procs[1:]]
    print(f"    compute per worker: {', '.join(busy)}")


def main():
    model = MachineModel()
    for skew in (1.0, 3.0, 8.0):
        costs = make_job_costs(NJOBS, skew=skew, seed=5)
        print(f"skew={skew}  (job costs {costs.min():.0f}..{costs.max():.0f}, "
              f"total {costs.sum():.0f})")
        static = run_workqueue(NJOBS, NPROCS, scheme="static", costs=costs, model=model)
        dynamic = run_workqueue(NJOBS, NPROCS, scheme="dynamic", costs=costs, model=model)
        report(static, costs)
        report(dynamic, costs)
        gain = (static.makespan - dynamic.makespan) / static.makespan * 100
        print(f"    dynamic pool vs static schedule: {gain:+.1f}% makespan\n")


if __name__ == "__main__":
    main()
