#!/usr/bin/env python3
"""Background computation while awaiting data (paper section 2.3).

"[accessible()] can be used to allow a processor to perform a background
computation while awaiting data from another processor."

P1 computes for a while and then sends a value; P2 either blocks in
``await`` (baseline) or runs chunks of background work between
``accessible()`` polls.  The comparison shows waiting time converted to
useful computation, at the price of the polling lookups — the run-time
checks the paper lets the compiler remove when provably unnecessary.

Run:  python examples/overlap_polling.py
"""

from repro import Interpreter, MachineModel, parse_program

MODEL = MachineModel(o_send=5, o_recv=5, alpha=500, per_byte=0.5)


def source(background: bool) -> str:
    poll_loop = (
        """
do t = 1, 40
  mypid == 2 and got == 0 and not accessible(X[2]) : { call work(25) }
  mypid == 2 and got == 0 and accessible(X[2]) : { got = t }
enddo
"""
        if background
        else ""
    )
    return f"""
array X[1:2] dist (BLOCK) seg (1)
scalar got = 0

mypid == 1 : {{
  call work(400)
  X[1] = 99
  X[1] -> {{2}}
}}
mypid == 2 : {{ X[2] <- X[1] }}
{poll_loop}
mypid == 2 : {{
  await(X[2])
  X[2] = X[2] + 1
}}
"""


def main():
    for background in (False, True):
        label = "accessible()-polling" if background else "plain await"
        it = Interpreter(parse_program(source(background)), 2, model=MODEL)
        stats = it.run()
        p2 = stats.procs[1]
        print(f"{label:22s} P2 compute={p2.compute_time:7.1f} "
              f"idle={p2.idle_time:7.1f} makespan={stats.makespan:7.1f}")
    print("\nPolling converts P2's idle time into background work; the small")
    print("makespan increase is the cost of the accessible() lookups.")


if __name__ == "__main__":
    main()
