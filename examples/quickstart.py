#!/usr/bin/env python3
"""Quickstart: the paper's section-2.2 example, end to end.

Takes the sequential loop ``A[i] = A[i] + B[i]``, lowers it to the
owner-computes IL+XDP form, optimizes it, and runs every variant on the
simulated 4-processor machine — printing the generated programs and the
message/makespan effect of each compilation strategy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Interpreter,
    MachineModel,
    optimize,
    parse_program,
    print_program,
    translate,
)

NPROCS = 4
N = 16

SEQUENTIAL = f"""
array A[1:{N}] dist (BLOCK) seg (1)
array B[1:{N}] dist (CYCLIC) seg (1)
scalar n = {N}

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""


def run(program, label):
    it = Interpreter(program, NPROCS, model=MachineModel())
    a0 = np.arange(1.0, N + 1)
    b0 = 10.0 * np.arange(1.0, N + 1)
    it.write_global("A", a0)
    it.write_global("B", b0)
    stats = it.run()
    ok = np.array_equal(it.read_global("A"), a0 + b0)
    print(
        f"{label:<22} messages={stats.total_messages:4d}  "
        f"makespan={stats.makespan:9.1f}  correct={ok}"
    )
    return stats


def main():
    seq = parse_program(SEQUENTIAL)

    print("=" * 70)
    print("Sequential input:")
    print(SEQUENTIAL)

    naive = translate(seq, NPROCS, bind_destinations=False)
    print("=" * 70)
    print("Naive owner-computes translation (paper section 2.2):")
    print(print_program(naive))

    result = optimize(translate(seq, NPROCS), NPROCS)
    print("=" * 70)
    print("After the optimization pipeline:")
    print(print_program(result.program))
    print("Pass report:")
    for line in result.reports:
        print(" ", line)

    migrate = translate(seq, NPROCS, strategy="migrate")
    print("=" * 70)
    print("Ownership-migration strategy (paper section 2.2, variant):")
    print(print_program(migrate))

    print("=" * 70)
    print("Execution on the simulated machine:")
    run(naive, "naive owner-computes")
    run(result.program, "optimized")
    run(migrate, "ownership migration")

    # The aligned case: optimization removes *all* communication.
    aligned = parse_program(SEQUENTIAL.replace("(CYCLIC)", "(BLOCK)"))
    best = optimize(translate(aligned, NPROCS), NPROCS).program
    run(best, "optimized (aligned)")


if __name__ == "__main__":
    main()
