#!/usr/bin/env python3
"""The paper's 3-D FFT (section 4) through its three optimization stages.

For each stage the IL+XDP program is printed (the n == P case reproduces
the paper's listings verbatim), executed on the simulated machine, checked
against numpy's FFT, and its makespan / message count / idle-time profile
reported — including the pipelining effect of stage 2 on per-processor
finish times.

Run:  python examples/fft3d.py
"""

import numpy as np

from repro.apps.fft3d import fft3d_source, run_fft3d
from repro.machine import MachineModel

STAGE_NAMES = {
    0: "stage 0: naive (guarded loops, separate redistribution)",
    1: "stage 1: compute rules eliminated (localized loops)",
    2: "stage 2: fused sends + sunk awaits (pipelined)",
}


def show_paper_listings():
    print("=" * 72)
    print("The paper's exact listings (n = P = 4):")
    for stage in (0, 1, 2):
        print("-" * 72)
        print(STAGE_NAMES[stage])
        print(fft3d_source(4, 4, stage))


def stage_table(n, nprocs, model, label):
    print("=" * 72)
    print(f"n={n}, P={nprocs}, machine={label}")
    print(f"{'stage':<8}{'correct':<9}{'makespan':>12}{'msgs':>7}"
          f"{'mean finish':>13}{'total idle':>12}")
    for stage in (0, 1, 2):
        r = run_fft3d(n, nprocs, stage, model=model)
        mean_finish = np.mean([p.finish_time for p in r.stats.procs])
        print(
            f"{stage:<8}{str(r.correct):<9}{r.makespan:>12.1f}"
            f"{r.messages:>7}{mean_finish:>13.1f}"
            f"{r.stats.total_idle_time:>12.1f}"
        )


def show_utilization():
    from repro.report import utilization_bars

    m = MachineModel(alpha=2000, per_byte=5.0, o_send=50, o_recv=50)
    print("=" * 72)
    print("Per-processor utilization, 16^3 on 4 processors (comm-heavy):")
    for stage in (1, 2):
        r = run_fft3d(16, 4, stage, model=m)
        print(f"\nstage {stage}  ('#' compute, 'o' comm overhead, '.' idle)")
        print(utilization_bars(r.stats))


def main():
    show_paper_listings()
    show_utilization()
    stage_table(4, 4, MachineModel(), "default message-passing")
    stage_table(8, 4, MachineModel(), "default message-passing")
    stage_table(
        16, 4,
        MachineModel(alpha=2000, per_byte=5.0, o_send=50, o_recv=50),
        "communication-heavy",
    )
    print()
    print("Reading the table: stage 1 removes the per-iteration compute-rule")
    print("lookups (paper: 'a much more efficient SPMD program'); stage 2's")
    print("pipelined sends lower the mean finish time and early receivers'")
    print("idle — the makespan stays bound by the transpose's tail message,")
    print("matching the paper's caveat that gains 'depend largely on the")
    print("capabilities of the run-time communication library'.")


if __name__ == "__main__":
    main()
