#!/usr/bin/env python3
"""XDP across a memory hierarchy (paper's conclusion).

"The applicability of XDP is quite general … it can be used to optimize
data transfers across different levels of a memory hierarchy."

Model: processor P1 is *global memory* (holds the data, does no compute);
P2 is a *processor with a small local store*.  Staging a block into local
memory is an ownership transfer ``-=>`` (global relinquishes the block),
processing happens locally, and the result returns with another ``-=>``.
Because ownership leaves when a block is shipped back, the local store's
footprint stays bounded at one block (the section-2.6 storage-reuse
argument) — the run shows the local peak bytes staying constant as the
data size grows, and double-buffering (stage block k+1 while processing
block k) hiding the transfer latency.

Run:  python examples/memory_hierarchy.py
"""

import numpy as np

from repro import Interpreter, MachineModel, parse_program

# "Global memory" is high-latency, high-bandwidth relative to compute.
MODEL = MachineModel(o_send=10, o_recv=10, alpha=300, per_byte=1.0)


def staged_source(n: int, block: int, *, double_buffer: bool) -> str:
    nblk = n // block
    lines = [f"array A[1:{n}] dist (BLOCK) seg ({block})", ""]

    def sec(k: int) -> str:
        lo = (k - 1) * block + 1
        return f"A[{lo}:{lo + block - 1}]"

    halfway = n // 2 // block  # blocks initially on P1 ("global memory")
    for k in range(1, halfway + 1):
        # Stage in: global releases block k, local acquires it.
        lines.append(f"mypid == 1 : {{ {sec(k)} -=> {{2}} }}")
        if not double_buffer:
            lines.append(f"mypid == 2 : {{ {sec(k)} <=- }}")
            lines.append(f"mypid == 2 : {{ await({sec(k)}) : "
                         f"{{ call scale({sec(k)}, 2.0) }} }}")
            lines.append(f"mypid == 2 : {{ {sec(k)} -=> {{1}} }}")
            lines.append(f"mypid == 1 : {{ {sec(k)} <=- }}")
    if double_buffer:
        for k in range(1, halfway + 1):
            lines.append(f"mypid == 2 : {{ {sec(k)} <=- }}")
        for k in range(1, halfway + 1):
            lines.append(f"mypid == 2 : {{ await({sec(k)}) : "
                         f"{{ call scale({sec(k)}, 2.0) }} }}")
            lines.append(f"mypid == 2 : {{ {sec(k)} -=> {{1}} }}")
        for k in range(1, halfway + 1):
            lines.append(f"mypid == 1 : {{ {sec(k)} <=- }}")
    return "\n".join(lines) + "\n"


def run(n: int, block: int, *, double_buffer: bool):
    it = Interpreter(
        parse_program(staged_source(n, block, double_buffer=double_buffer)),
        2, model=MODEL,
    )
    a0 = np.arange(1.0, n + 1)
    it.write_global("A", a0)
    stats = it.run()
    got = it.read_global("A")
    want = a0.copy()
    want[: n // 2] *= 2.0
    assert np.array_equal(got, want)
    local_peak = it.engine.symtabs[1].memory.peak_bytes
    return stats, local_peak


def main():
    print("staging blocks from 'global memory' (P1) through a 'local store' (P2):\n")
    print(f"{'n':>6} {'block':>6} {'mode':<14} {'makespan':>10} "
          f"{'local peak bytes':>17}")
    for n in (64, 128, 256):
        for mode, db in (("serial", False), ("double-buffer", True)):
            stats, peak = run(n, 16, double_buffer=db)
            print(f"{n:>6} {16:>6} {mode:<14} {stats.makespan:>10.0f} {peak:>17}")
    print("\nThe local store's initial half plus staged blocks bound its peak;")
    print("double-buffering posts all stage-ins up front so transfers overlap")
    print("the block computations (the conclusion's memory-hierarchy use).")


if __name__ == "__main__":
    main()
