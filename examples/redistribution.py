#!/usr/bin/env python3
"""Array redistribution with ownership transfer, at segment granularity.

Shows the compile-time redistribution plan for the FFT example's
(*,*,BLOCK) → (*,BLOCK,*) change (paper Figure 4), regenerates the
figure's data-to-segment assignment, and runs the redistribution as an
IL+XDP program — demonstrating that the run-time symbol table tracks the
moving ownership (``mylb``/``myub`` answer differently before and after).

Run:  python examples/redistribution.py
"""

import numpy as np

from repro import (
    Collapsed, Block, Distribution, Interpreter, MachineModel,
    ProcessorGrid, Segmentation, parse_program, plan_redistribution, section,
)
from repro.apps.fft3d import fft3d_source
from repro.report import figure4_layouts

N, P = 4, 4


def main():
    grid = ProcessorGrid((P,))
    space = section((1, N), (1, N), (1, N))
    src = Distribution(space, (Collapsed(), Collapsed(), Block()), grid)
    dst = Distribution(space, (Collapsed(), Block(), Collapsed()), grid)

    print(figure4_layouts(N, P))

    plan = plan_redistribution(src, dst, segmentation=Segmentation(src, (N, 1, 1)))
    print("\ncompile-time redistribution plan (segment granularity):")
    print(plan)

    # Run the paper's redistribution loop (stage-1 listing, FFTs and all).
    program = parse_program(fft3d_source(N, P, 1))
    it = Interpreter(program, P, model=MachineModel())
    rng = np.random.default_rng(0)
    a0 = rng.standard_normal((N, N, N)) + 1j * rng.standard_normal((N, N, N))
    it.write_global("A", a0)

    before = [it.engine.symtabs[p].mylb("A", 3) for p in range(P)]
    stats = it.run()
    after_lb2 = [it.engine.symtabs[p].mylb("A", 2) for p in range(P)]
    after_ub2 = [it.engine.symtabs[p].myub("A", 2) for p in range(P)]

    print("\nrun-time symbol table before: mylb(A, dim 3) per processor:", before)
    print("run-time symbol table after:  mylb..myub(A, dim 2) per processor:",
          list(zip(after_lb2, after_ub2)))
    print(f"\nownership moves executed: {stats.total_messages} messages, "
          f"{stats.total_bytes} bytes, makespan {stats.makespan:.1f}")
    ok = np.allclose(it.read_global("A"), np.fft.fftn(a0))
    print(f"3-D FFT result correct: {ok}")


if __name__ == "__main__":
    main()
