#!/usr/bin/env python3
"""Selective monitoring by transferring ownership of a permission variable
(paper section 2.6).

Every processor runs the same SPMD rounds; an ``iown``-guarded "print"
fires only on the processor currently holding ``MON[1]``.  A debugger-style
schedule moves that permission with pure ownership transfers (``=>`` —
no data shipped), steering which processor reports each round.

Run:  python examples/debugger_monitor.py
"""

from repro.apps.monitor import run_monitor
from repro.machine import MachineModel


def main():
    nprocs = 4
    schedule = [0, 0, 1, 1, 2, 3, 3, 0]
    print(f"machine: {nprocs} processors")
    print(f"debugger schedule (round -> monitored pid): {schedule}\n")

    result = run_monitor(nprocs, schedule, model=MachineModel())

    print("debugger output stream:")
    for t, pid, text in result.stats.logs:
        print(f"  t={t:8.1f}  {text}")

    print(f"\nownership-transfer messages: {result.stats.total_messages} "
          f"({result.stats.total_bytes} bytes — headers only, no values)")
    assert result.monitored_pids() == schedule
    print("monitoring followed the schedule exactly.")


if __name__ == "__main__":
    main()
