"""E3 — the section-3.1 iown() algorithm.

The paper's walk-through: C[1:4,1:8] distributed (BLOCK, BLOCK) over a 2x2
grid with 2x1 segments; P3 executes ``iown(C[1,5:7])`` and the intersect-
and-cover test returns true.  We benchmark that exact query, then sweep
the segment-descriptor count to show the lookup's linear scaling — the
paper notes "more efficient algorithms could be developed"; this measures
the baseline it describes.
"""

from conftest import emit

from repro import ProcessorGrid, RuntimeSymbolTable, Segmentation, section
from repro.distributions import Block, Distribution


def paper_table() -> RuntimeSymbolTable:
    st = RuntimeSymbolTable(2)  # the paper's P3
    dist = Distribution(
        section((1, 4), (1, 8)), (Block(), Block()), ProcessorGrid((2, 2))
    )
    st.declare("C", Segmentation(dist, (2, 1)))
    return st


def test_e3_paper_query_bench(benchmark):
    st = paper_table()
    query = section(1, (5, 7))
    result = benchmark(st.iown, "C", query)
    assert result is True
    # The walk-through's intersections: (1,5), (1,6), (1,7), null.
    inters = [
        d.segment.intersect(query) for d in st.entry("C").segdescs
    ]
    sizes = sorted(i.size for i in inters if i is not None)
    assert sizes == [1, 1, 1]
    benchmark.extra_info["segments_examined"] = 4


def test_e3_scaling_table(benchmark):
    rows = []
    for n, seg in [(64, 16), (64, 4), (64, 1), (1024, 16), (1024, 1)]:
        st = RuntimeSymbolTable(0)
        dist = Distribution(section((1, n)), (Block(),), ProcessorGrid((2,)))
        st.declare("X", Segmentation(dist, (seg,)))
        nsegs = st.entry("X").segment_count
        q = section((1, n // 2))
        import timeit

        t = timeit.timeit(lambda: st.iown("X", q), number=200) / 200
        rows.append([n, seg, nsegs, f"{t * 1e6:.1f} us"])
    emit(
        "E3 / section 3.1 — iown() cost vs segment-descriptor count",
        ["extent", "segment size", "#descriptors", "mean lookup"],
        rows,
    )
    st = paper_table()
    benchmark.pedantic(
        lambda: st.iown("C", section(1, (5, 7))), rounds=5, iterations=100
    )
