"""A2 — ablation: ownership-transfer granularity (paper section 3).

"The XDP language constructs allow ownership transfers to occur at the
granularity of a single element.  However, for efficiency's sake, a
compiler may use a coarser granularity of ownership transfer."

A BLOCK → CYCLIC redistribution of a vector is executed at several segment
granularities.  Fine granularity multiplies the per-message overhead;
coarse granularity cannot exploit striding (a BLOCK segment splits across
CYCLIC owners, so element-exact plans need per-destination messages
anyway).  The table reports the plan's move count and the measured
transfer time per granularity, plus the run-time symbol-table descriptor
count the granularity implies.
"""

import numpy as np
from conftest import emit

from repro import (
    Interpreter, MachineModel, ProcessorGrid, Segmentation,
    parse_program, plan_redistribution, section,
)
from repro.distributions import Block, Cyclic, Distribution

MODEL = MachineModel(o_send=40, o_recv=40, alpha=200, per_byte=1.0)
N = 256
NPROCS = 4


def plan_for(seg_size: int):
    grid = ProcessorGrid((NPROCS,))
    src = Distribution(section((1, N)), (Block(),), grid)
    dst = Distribution(section((1, N)), (Cyclic(),), grid)
    return plan_redistribution(
        src, dst, segmentation=Segmentation(src, (seg_size,))
    )


def program_for(seg_size: int):
    """Compiler-generated redistribution via repro.core.redistgen."""
    from repro.core.ir.nodes import ArrayDecl, Block as IRBlock, Program
    from repro.core.redistgen import redistribution_statements

    plan = plan_for(seg_size)
    decl = ArrayDecl("A", ((1, N),), dist="(BLOCK)", segment_shape=(seg_size,))
    return Program(
        (decl,), IRBlock(tuple(redistribution_statements("A", plan)))
    )


def run(seg_size: int):
    it = Interpreter(program_for(seg_size), NPROCS, model=MODEL)
    a0 = np.arange(1.0, N + 1)
    it.write_global("A", a0)
    stats = it.run()
    assert np.array_equal(it.read_global("A"), a0)  # values preserved
    # Final ownership matches the CYCLIC target.
    dst = Distribution(section((1, N)), (Cyclic(),), ProcessorGrid((NPROCS,)))
    for pid in range(NPROCS):
        for sec in dst.owned_sections(pid):
            assert it.engine.symtabs[pid].iown("A", sec)
    return stats


def test_a2_granularity_sweep(benchmark):
    rows = []
    results = {}
    for seg in (1, 4, 16, 64):
        plan = plan_for(seg)
        stats = run(seg)
        results[seg] = stats.makespan
        descriptors = seg and (N // NPROCS) // seg
        rows.append([
            seg, plan.message_count,
            f"{plan.total_elements_moved / plan.message_count:.1f}",
            descriptors, f"{stats.makespan:.0f}",
        ])
    emit(
        f"A2 / section 3 — ownership-transfer granularity "
        f"(BLOCK -> CYCLIC, n={N}, P={NPROCS})",
        ["segment size", "moves", "elems/move", "descriptors/proc", "makespan"],
        rows,
    )
    # Element-granularity pays maximal per-message overhead.
    assert results[1] > results[16]
    benchmark.pedantic(lambda: run(16), rounds=1, iterations=1)


def test_a2_coarse_bench(benchmark):
    benchmark.pedantic(lambda: run(64), rounds=3, iterations=1)


def test_a2_fine_bench(benchmark):
    benchmark.pedantic(lambda: run(4), rounds=3, iterations=1)
