"""F2 — Figure 2: the XDP symbol-table structure.

Rebuilds the figure's two arrays (A[1:4,1:8] (*, BLOCK) seg (2,1);
B[1:16,1:16] (BLOCK, CYCLIC) seg (4,2)) on a 2x2 grid and benchmarks the
run-time operations the table supports: construction, and the
intersect-and-cover ``iown``/``accessible`` lookups of section 3.1.
"""

from conftest import emit

from repro import ProcessorGrid, RuntimeSymbolTable, Segmentation, section
from repro.distributions import Block, Collapsed, Cyclic, Distribution
from repro.report import figure2_table


def build_table(pid: int = 0) -> RuntimeSymbolTable:
    grid = ProcessorGrid((2, 2))
    st = RuntimeSymbolTable(pid)
    st.declare(
        "A",
        Segmentation(
            Distribution(section((1, 4), (1, 8)), (Collapsed(), Block()), grid),
            (2, 1),
        ),
    )
    st.declare(
        "B",
        Segmentation(
            Distribution(section((1, 16), (1, 16)), (Block(), Cyclic()), grid),
            (4, 2),
        ),
    )
    return st


def test_fig2_table_construction_bench(benchmark):
    st = benchmark(build_table)
    assert st.entry("A").segment_count == 4
    assert st.entry("B").segment_count == 8
    print()
    print(figure2_table())
    benchmark.extra_info["A_segments"] = 4
    benchmark.extra_info["B_segments"] = 8


def test_fig2_iown_lookup_bench(benchmark):
    st = build_table()
    queries = [
        ("A", section((1, 4), (1, 2)), True),
        ("A", section((1, 4), (1, 3)), False),
        ("B", section((1, 4), (1, 3, 2)), True),
        ("B", section((1, 8), (1, 16)), False),
    ]

    def run():
        return [st.iown(name, sec) for name, sec, _ in queries]

    got = benchmark(run)
    assert got == [want for _, _, want in queries]
    emit(
        "F2 / run-time symbol-table lookups (section 3.1 algorithm)",
        ["query", "result"],
        [[f"iown({n}{s})", g] for (n, s, _), g in zip(queries, got)],
    )
