"""E2 — the section-2.2 ownership-migration variant.

The paper's motivation: "the compiler might determine that it would save
*future* communication if ownership of each element of the A array were
moved to the same processor as the corresponding element of the B array."
We measure exactly that: over repeated sweeps of ``A[i] = A[i] + B[i]``
with misaligned operands, owner-computes pays the value messages every
sweep, while migration pays the ownership moves once — after the first
sweep, A is aligned with B and the ``not iown``-guarded transfers vanish.
"""

import numpy as np
from conftest import emit

from repro import Interpreter, MachineModel, parse_program, translate

NPROCS = 4
MODEL = MachineModel()

SRC = """
array A[1:{n}] dist (BLOCK) seg (1)
array B[1:{n}] dist (CYCLIC) seg (1)

do t = 1, {sweeps}
  do i = 1, {n}
    A[i] = A[i] + B[i]
  enddo
enddo
"""


def run(strategy: str, n: int, sweeps: int):
    prog = parse_program(SRC.format(n=n, sweeps=sweeps))
    xlated = translate(prog, NPROCS, strategy=strategy)
    it = Interpreter(xlated, NPROCS, model=MODEL)
    a0 = np.arange(1.0, n + 1)
    b0 = np.ones(n)
    it.write_global("A", a0)
    it.write_global("B", b0)
    stats = it.run()
    assert np.array_equal(it.read_global("A"), a0 + sweeps * b0)
    return stats


def test_e2_table(benchmark):
    n = 32
    rows = []
    for sweeps in (1, 2, 4, 8):
        oc = run("owner-computes", n, sweeps)
        mig = run("migrate", n, sweeps)
        rows.append([
            sweeps,
            oc.total_messages, f"{oc.makespan:.0f}",
            mig.total_messages, f"{mig.makespan:.0f}",
        ])
    emit(
        "E2 / section 2.2 — owner-computes vs ownership migration "
        f"(n={n}, misaligned)",
        ["sweeps", "o-c msgs", "o-c time", "migrate msgs", "migrate time"],
        rows,
    )
    # Shape: owner-computes messages grow linearly with sweeps; migration's
    # stay constant (paid once).
    m1 = run("migrate", n, 1).total_messages
    m8 = run("migrate", n, 8).total_messages
    assert m8 == m1
    oc1 = run("owner-computes", n, 1).total_messages
    oc8 = run("owner-computes", n, 8).total_messages
    assert oc8 == 8 * oc1
    # And with enough reuse, migration wins outright.
    assert run("migrate", n, 8).makespan < run("owner-computes", n, 8).makespan
    benchmark.pedantic(lambda: run("migrate", n, 2), rounds=1, iterations=1)


def test_e2_migrate_bench(benchmark):
    stats = benchmark(run, "migrate", 32, 4)
    benchmark.extra_info["virtual_makespan"] = stats.makespan
    benchmark.extra_info["messages"] = stats.total_messages


def test_e2_owner_computes_bench(benchmark):
    stats = benchmark(run, "owner-computes", 32, 4)
    benchmark.extra_info["virtual_makespan"] = stats.makespan
    benchmark.extra_info["messages"] = stats.total_messages
