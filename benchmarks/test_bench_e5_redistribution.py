"""E5 — pipelined segment-granularity ownership transfer (paper section 3.1).

"The use of segments allows the pipelining of a transfer of a section …
A processor can transfer each segment individually … In many cases, this
can effectively reduce the total time by allowing a processor to overlap
one segment's transfer with computation on another segment."

P1 ships its half of a vector to P2 in segments of size ``s``; P2 scales
each segment as soon as it becomes accessible.  Sweeping ``s`` exposes the
classic pipelining U-curve: tiny segments drown in per-message overhead,
one monolithic segment allows no overlap, and the optimum sits between.
"""

import numpy as np
from conftest import emit

from repro import Interpreter, MachineModel, parse_program

MODEL = MachineModel(o_send=40, o_recv=40, alpha=400, per_byte=2.0)


def source(n: int, s: int) -> str:
    half = n // 2
    nseg = half // s
    return f"""array A[1:{n}] dist (BLOCK) seg ({s})

do k = 1, {nseg}
  mypid == 1 : {{ A[(k-1)*{s}+1:k*{s}] -=> {{2}} }}
enddo
do k = 1, {nseg}
  mypid == 2 : {{ A[(k-1)*{s}+1:k*{s}] <=- }}
enddo
do k = 1, {nseg}
  mypid == 2 : {{
    await(A[(k-1)*{s}+1:k*{s}]) : {{
      call scale(A[(k-1)*{s}+1:k*{s}], 2.0)
    }}
  }}
enddo
"""


def run(n: int, s: int):
    it = Interpreter(parse_program(source(n, s)), 2, model=MODEL)
    a0 = np.arange(1.0, n + 1)
    it.write_global("A", a0)
    stats = it.run()
    got = it.read_global("A")
    want = a0.copy()
    want[: n // 2] *= 2.0
    assert np.array_equal(got, want)
    return stats


def test_e5_segment_sweep(benchmark):
    n = 512
    rows = []
    results = {}
    for s in (4, 8, 16, 32, 64, 128, 256):
        stats = run(n, s)
        results[s] = stats.makespan
        rows.append([
            s, (n // 2) // s, stats.total_messages,
            f"{stats.makespan:.0f}", f"{stats.total_idle_time:.0f}",
        ])
    emit(
        f"E5 / section 3.1 — pipelined segment transfer (n={n}, P1 -> P2)",
        ["segment size", "#segments", "messages", "makespan", "idle"],
        rows,
    )
    # U-curve shape: the best interior segment size beats both extremes.
    best = min(results.values())
    assert best < results[256]  # monolithic transfer allows no overlap
    assert best < results[4]    # over-fine segments pay per-message overhead
    benchmark.pedantic(lambda: run(512, 32), rounds=1, iterations=1)


def test_e5_best_segment_bench(benchmark):
    stats = benchmark.pedantic(lambda: run(512, 32), rounds=3, iterations=1)
    benchmark.extra_info["model"] = "o=40 alpha=400 per_byte=2"
