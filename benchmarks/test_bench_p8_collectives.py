"""P8 — collective communication subsystem (ISSUE 8).

Two artifacts from the collectives work are recorded here:

* **Bounded redistribution planner.**  The 3-D FFT's repartition
  ``(*, *, BLOCK) -> (*, BLOCK, *)`` is planned with a temp-memory
  budget: the planner splits the all-to-all-shaped exchange into rounds
  so no processor ever stages more than ``max_temp_frac`` of its local
  array size in transit.  The artifact records peak temp bytes vs the
  naive single-round plan across a frac sweep; the acceptance bar is
  peak <= 50% of naive at ``max_temp_frac=0.25``.
* **Distributed matmul suite.**  Cannon and SUMMA (the two variants
  that exercise broadcast, allgather, all-to-all and reduce_scatter
  between them) at P in {4, 16, 64} on both transport backends, with
  bit-identical digests asserted and the native-vs-p2p lowering
  makespans compared at P=4.

Results are recorded to ``BENCH_collectives.json`` at the repo root.
"""

import time
from pathlib import Path

from conftest import emit

from repro.apps.matmul import run_matmul
from repro.core.collectives.planner import (
    dist_from_spec, plan_bounded_redistribution,
)
from repro.distributions import ProcessorGrid
from repro.machine.transport import SIM_BACKENDS
from repro.report.record import write_json_atomic

ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = ROOT / "BENCH_collectives.json"

NPROCS = (4, 16, 64)
VARIANTS = ("cannon", "summa")
FFT_SHAPE = (8, 8, 8)
FRACS = (0.125, 0.25, 0.5, 1.0)

#: Acceptance bar (ISSUE 8): at frac=0.25 the planner's peak temp memory
#: on the fft3d repartition must be at most half the naive plan's.
PLANNER_BAR_FRAC = 0.25
PLANNER_BAR = 0.50


def run_planner_bench() -> dict:
    grid = ProcessorGrid((4,))
    bounds = tuple((1, n) for n in FFT_SHAPE)
    src = dist_from_spec("(*, *, BLOCK)", bounds, grid)
    dst = dist_from_spec("(*, BLOCK, *)", bounds, grid)
    sweep = []
    for frac in FRACS:
        sched = plan_bounded_redistribution(src, dst, max_temp_frac=frac)
        s = sched.summary()
        s["peak_vs_naive"] = round(s["peak_vs_naive"], 4)
        sweep.append(s)
    return {
        "shape": list(FFT_SHAPE),
        "nprocs": 4,
        "repartition": "(*, *, BLOCK) -> (*, BLOCK, *)",
        "sweep": sweep,
    }


def _run_case(variant: str, nprocs: int, backend: str,
              collectives: str = "native") -> dict:
    n = 2 * nprocs
    t0 = time.perf_counter()
    r = run_matmul(n, nprocs, variant, backend=backend,
                   collectives=collectives)
    wall = time.perf_counter() - t0
    assert r.correct, (variant, nprocs, backend, collectives)
    return {
        "variant": variant,
        "n": n,
        "nprocs": nprocs,
        "backend": backend,
        "collectives": collectives,
        "wall_s": round(wall, 4),
        "makespan": r.stats.makespan,
        "messages": r.stats.total_messages,
        "result_sha256": r.digest,
    }


def run_matmul_bench(nprocs_list=NPROCS) -> dict:
    cases = [
        _run_case(v, p, backend)
        for v in VARIANTS
        for p in nprocs_list
        for backend in SIM_BACKENDS
    ]
    by_key: dict = {}
    for c in cases:
        by_key.setdefault((c["variant"], c["nprocs"]), {})[c["backend"]] = c
    transparency = {
        f"{v}@{p}": per["msg"]["result_sha256"] == per["shmem"]["result_sha256"]
        for (v, p), per in by_key.items()
    }
    # Native collective schedules vs the flat p2p lowering, msg backend.
    lowering = {}
    for v in VARIANTS:
        native = by_key[(v, nprocs_list[0])]["msg"]
        p2p = _run_case(v, nprocs_list[0], "msg", collectives="p2p")
        assert p2p["result_sha256"] == native["result_sha256"], v
        lowering[v] = {
            "nprocs": nprocs_list[0],
            "native_makespan": native["makespan"],
            "p2p_makespan": p2p["makespan"],
            "ratio_native_over_p2p": round(
                native["makespan"] / p2p["makespan"], 3),
        }
    return {
        "variants": list(VARIANTS),
        "nprocs": list(nprocs_list),
        "cases": cases,
        "result_transparent": transparency,
        "lowering_makespan": lowering,
    }


def _emit_results(results: dict) -> None:
    emit(
        "P8 — bounded redistribution planner (fft3d repartition, P=4)",
        ["frac", "rounds", "moves", "peak_temp", "naive_peak", "peak/naive"],
        [[s["max_temp_frac"], s["rounds"], s["moves"], s["peak_temp_bytes"],
          s["naive_peak_bytes"], f"{s['peak_vs_naive']:.3f}"]
         for s in results["planner"]["sweep"]],
    )
    emit(
        "P8 — distributed matmul (collective makespans)",
        ["variant", "P", "backend", "wall_s", "makespan", "messages",
         "sha256"],
        [[c["variant"], c["nprocs"], c["backend"], f"{c['wall_s']:.3f}",
          f"{c['makespan']:.0f}", c["messages"], c["result_sha256"][:12]]
         for c in results["matmul"]["cases"]],
    )


def _planner_bar_holds(planner: dict) -> bool:
    at_bar = [s for s in planner["sweep"]
              if s["max_temp_frac"] == PLANNER_BAR_FRAC]
    return bool(at_bar) and at_bar[0]["peak_vs_naive"] <= PLANNER_BAR


def test_p8_smoke(benchmark):
    """CI-friendly subset: planner bar + P=4 matmuls, both backends."""
    results = {
        "planner": run_planner_bench(),
        "matmul": run_matmul_bench(nprocs_list=(4,)),
    }
    _emit_results(results)
    assert _planner_bar_holds(results["planner"]), results["planner"]
    assert all(results["matmul"]["result_transparent"].values()), results
    benchmark.pedantic(
        lambda: run_matmul(8, 4, "summa", backend="msg"),
        rounds=1, iterations=1,
    )


def test_p8_collectives_full(benchmark):
    """The full sweep: records BENCH_collectives.json."""
    results = {
        "schema": 1,
        "planner": run_planner_bench(),
        "matmul": run_matmul_bench(),
    }
    _emit_results(results)

    assert _planner_bar_holds(results["planner"]), results["planner"]
    # Budgets must actually trade rounds for peak memory: the sweep's
    # tightest budget uses strictly more rounds than the loosest.
    rounds = [s["rounds"] for s in results["planner"]["sweep"]]
    assert rounds[0] > rounds[-1], rounds

    assert all(results["matmul"]["result_transparent"].values()), (
        results["matmul"]["result_transparent"]
    )

    write_json_atomic(BENCH_FILE, results)
    benchmark.extra_info["planner_peak_vs_naive"] = {
        str(s["max_temp_frac"]): s["peak_vs_naive"]
        for s in results["planner"]["sweep"]
    }
    benchmark.extra_info["lowering_makespan"] = (
        results["matmul"]["lowering_makespan"]
    )
    benchmark.extra_info["bench_file"] = str(BENCH_FILE)
    benchmark.pedantic(
        lambda: run_matmul_bench(nprocs_list=(4,)), rounds=1, iterations=1,
    )
