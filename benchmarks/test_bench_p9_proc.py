"""P9 — real-parallelism wall clock: the ``proc`` backend speedup curve.

Unlike every virtual-time artifact in this directory, P9 measures real
seconds: the fixed-size Jacobi sweep executes on forked OS processes
(``--backend proc``) at P in {1, 2, 4} and records the duration of the
real execution pass into ``BENCH_proc.json``.

Honesty is part of the artifact contract (see
:mod:`repro.apps.procbench`): on a single-core host the recorded file is
an explicit skip marker, never numbers; on multi-core hosts every
recorded case must be sha256-identical to the simulator's result, and
speedups below 1.0 (fork/pipe overhead dominating these tiny programs)
are recorded as measured.
"""

import json
import os
from pathlib import Path

from repro.apps.procbench import format_proc_bench, run_proc_bench
from repro.report.record import write_json_atomic

ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = ROOT / "BENCH_proc.json"


def test_p9_proc_bench_records(benchmark):
    """Record BENCH_proc.json: measured curve on multi-core hosts, the
    explicit skip marker on single-core ones — never fabricated numbers."""
    results = run_proc_bench()
    print()
    print(format_proc_bench(results))
    write_json_atomic(BENCH_FILE, results)
    recorded = json.loads(BENCH_FILE.read_text())
    assert recorded["backend"] == "proc"
    if results["skipped"]:
        assert (os.cpu_count() or 1) < 2
        assert "reason" in recorded and "cpu_count" in recorded
        assert "cases" not in recorded  # a skip marker carries no numbers
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return
    assert results["result_transparent"], results
    assert [c["nprocs"] for c in results["cases"]] == list(
        results["config"]["nprocs"]
    )
    for c in results["cases"]:
        assert c["real_wall_s"] > 0.0
        assert c["total_wall_s"] >= c["real_wall_s"]
    benchmark.pedantic(
        lambda: run_proc_bench(nprocs_list=(2,), repeats=1),
        rounds=1, iterations=1,
    )


def test_p9_measured_path_shape(monkeypatch):
    """The measuring path itself (exercised even on single-core CI by
    lifting the honesty gate): artifact shape, transparency, and the
    speedup map — the forced run is NOT written to BENCH_proc.json."""
    monkeypatch.setattr("repro.apps.procbench.os.cpu_count", lambda: 2)
    results = run_proc_bench(nprocs_list=(1, 2), n=8, sweeps=2, repeats=1)
    assert not results["skipped"]
    assert results["result_transparent"], results
    assert set(results["speedup_vs_first"]) == {"1", "2"}
    assert results["speedup_vs_first"]["1"] == 1.0
    shas = {c["nprocs"]: c["result_sha256"] for c in results["cases"]}
    # Different P => different block layout but identical global result
    # is asserted per-case against the simulator, not across P (the
    # jacobi source differs per P, so cross-P digests may legally agree
    # or differ; transparency is the invariant).
    assert all(len(s) == 64 for s in shas.values())


def test_p9_skip_marker_is_explicit(monkeypatch):
    monkeypatch.setattr("repro.apps.procbench.os.cpu_count", lambda: 1)
    results = run_proc_bench()
    assert results["skipped"] is True
    assert "fabricated" in results["reason"]
    assert "cases" not in results
