"""P2 — fault tolerance: result transparency, determinism, overhead.

The fault layer's three acceptance bars, measured at scale:

1. **Transparency** — under every loss/duplication/delay/stall schedule
   (no crashes), the reliable transport must make the workqueue and
   FFT-pipeline programs produce virtual results identical to the
   fault-free run, at P in {8, 64}.
2. **Determinism** — a fixed seed replays a faulty run bit-identically
   (makespan, counters, per-processor finish times).
3. **Overhead** — with no FaultModel configured, the engine's hot path
   must be within 5% of the pre-fault-layer send path (min-of-repeats
   walls, interleaved to cancel drift).

The overhead number is also recorded into ``BENCH_engine.json`` by
``repro bench`` (the ``faults_off`` entry).
"""

from conftest import emit

from repro.apps.chaos import run_chaos
from repro.apps.enginebench import measure_faults_overhead

#: Acceptance bar: fault machinery disabled must cost < 5% on the
#: fault-free hot path.
MAX_FAULTS_OFF_OVERHEAD_PCT = 5.0


def _emit_chaos(report: dict) -> None:
    rows = [
        [c["program"], c["nprocs"], c["schedule"],
         "OK" if c["ok"] else "FAIL", f"{c['makespan']:.0f}",
         f"{c['baseline_makespan']:.0f}", c["retransmits"],
         c["dups_suppressed"]]
        for c in report["cases"]
    ]
    emit(
        "P2 — chaos battery (reliable transport over fault schedules)",
        ["program", "P", "schedule", "result", "makespan", "baseline",
         "rexmit", "dup-sup"],
        rows,
    )


def test_p2_chaos_transparency_at_scale(benchmark):
    """Every fault schedule is result-transparent at P=8 and P=64."""
    report = run_chaos(
        programs=("workqueue", "fft"), nprocs_list=(8, 64),
        seed=7, jobs_per_proc=8, include_crash=True,
    )
    _emit_chaos(report)
    for c in report["cases"]:
        assert c["ok"], (
            f"{c['program']}@{c['nprocs']} under {c['schedule']}: "
            f"{c['detail']}"
        )
    for d in report["determinism"]:
        assert d["ok"], f"seed replay diverged: {d}"
    for d in report["degraded"]:
        assert d["ok"], f"crash did not degrade gracefully: {d}"
    assert report["ok"]
    benchmark.pedantic(
        lambda: run_chaos(
            programs=("workqueue",), nprocs_list=(8,),
            seed=7, jobs_per_proc=8,
        ),
        rounds=1, iterations=1,
    )


def test_p2_faults_off_overhead(benchmark):
    """The disabled fault hook costs < 5% on the P=64 workqueue."""
    fo = measure_faults_overhead(64, jobs_per_proc=16, repeats=5)
    emit(
        "P2 — faults-off overhead (P=64 workqueue, min of 5)",
        ["variant", "wall_s", "overhead_pct"],
        [
            ["prefault send path", fo["wall_prefault_s"], "baseline"],
            ["disabled (shipped default)", fo["wall_disabled_s"],
             f"{fo['overhead_disabled_pct']:+.1f}%"],
            ["inert protocol engaged", fo["wall_inert_s"],
             f"{fo['overhead_inert_pct']:+.1f}%"],
        ],
    )
    assert fo["overhead_disabled_pct"] < MAX_FAULTS_OFF_OVERHEAD_PCT, fo
    benchmark.pedantic(
        lambda: measure_faults_overhead(8, jobs_per_proc=4, repeats=1),
        rounds=1, iterations=1,
    )
