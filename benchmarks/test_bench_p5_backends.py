"""P5 — transport backends: message passing vs shared address (section 5).

The same placement-annotated programs run under both bindings of the
transfer operators: ``msg`` binds ``->``/``<-`` to send/receive pairs,
``shmem`` binds them to poststore/prefetch with ``await`` as the
completion fence.  The paper's delayed-binding claim is that the choice
is a *cost* decision, not a semantic one — so this benchmark records,
for Jacobi and the 3-D FFT at P in {4, 16}:

* bit-identical result arrays across backends (asserted, and the sha256
  digests are recorded in the artifact);
* the virtual makespan under each binding and their ratio (the number
  that would drive a real binding choice);
* wall-clock per backend (the simulator's own overhead).

A second section guards the scheduler/transport refactor itself: the
``msg`` backend re-runs the P1 workqueue sweep at P=256 against the
in-process seed-reference engine and the live speedup must stay within
5% of the one recorded in ``BENCH_engine.json`` before the split.  The
ratio-of-ratios is machine-independent: both live engines run on the
same host, so a slower machine cancels out.

Results are recorded to ``BENCH_backends.json`` at the repo root.
"""

import hashlib
import json
import time
from pathlib import Path

import numpy as np
from conftest import emit

from repro.report.record import write_json_atomic

from repro.apps.fft3d import run_fft3d
from repro.apps.jacobi import run_jacobi
from repro.machine.transport import SIM_BACKENDS

ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = ROOT / "BENCH_backends.json"
ENGINE_BENCH_FILE = ROOT / "BENCH_engine.json"

NPROCS = (4, 16)

#: The msg backend's live indexed-vs-seed speedup at workqueue P=256 must
#: stay within 5% of the committed pre-refactor number.
REFACTOR_OVERHEAD_TOLERANCE = 0.05


def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def _run_case(app: str, nprocs: int, backend: str) -> dict:
    t0 = time.perf_counter()
    if app == "jacobi":
        res = run_jacobi(4 * nprocs, nprocs, 3, "halo-overlap",
                         backend=backend)
    else:
        res = run_fft3d(nprocs, nprocs, 2, backend=backend)
    wall = time.perf_counter() - t0
    assert res.correct, (app, nprocs, backend)
    return {
        "app": app,
        "nprocs": nprocs,
        "backend": backend,
        "wall_s": round(wall, 4),
        "makespan": res.stats.makespan,
        "messages": res.stats.total_messages,
        "result_sha256": _sha(res.result),
    }


def run_backend_bench(nprocs_list=NPROCS) -> dict:
    cases = [
        _run_case(app, p, backend)
        for app in ("jacobi", "fft3d")
        for p in nprocs_list
        for backend in SIM_BACKENDS
    ]
    by_key: dict = {}
    for c in cases:
        by_key.setdefault((c["app"], c["nprocs"]), {})[c["backend"]] = c
    transparency, ratios = {}, {}
    for (app, p), per in by_key.items():
        key = f"{app}@{p}"
        transparency[key] = (
            per["msg"]["result_sha256"] == per["shmem"]["result_sha256"]
        )
        ratios[key] = round(per["shmem"]["makespan"] / per["msg"]["makespan"], 3)
    return {
        "schema": 1,
        "config": {
            "apps": ["jacobi", "fft3d"],
            "nprocs": list(nprocs_list),
            "backends": list(SIM_BACKENDS),
        },
        "cases": cases,
        "result_transparent": transparency,
        "makespan_ratio_shmem_over_msg": ratios,
    }


def _emit_results(results: dict) -> None:
    rows = [
        [c["app"], c["nprocs"], c["backend"], f"{c['wall_s']:.3f}",
         f"{c['makespan']:.0f}", c["messages"], c["result_sha256"][:12]]
        for c in results["cases"]
    ]
    emit(
        "P5 — transport backends (msg vs shmem binding)",
        ["app", "P", "backend", "wall_s", "makespan", "messages", "sha256"],
        rows,
    )


def test_p5_smoke_transparency(benchmark):
    """CI-friendly subset: P=4 only, both backends, bit-identical."""
    results = run_backend_bench(nprocs_list=(4,))
    _emit_results(results)
    assert all(results["result_transparent"].values()), results
    benchmark.pedantic(
        lambda: run_jacobi(16, 4, 3, "halo-overlap", backend="shmem"),
        rounds=1, iterations=1,
    )


def test_p5_backends_full(benchmark):
    """The full sweep: records BENCH_backends.json, asserts transparency
    and the refactor-overhead bar."""
    results = run_backend_bench()
    _emit_results(results)

    # Section-5 result transparency at every point of the sweep.
    assert all(results["result_transparent"].values()), (
        results["result_transparent"]
    )
    # The bindings are genuinely different machines: on these models the
    # shared-address binding must not be makespan-identical everywhere.
    assert any(
        r != 1.0 for r in results["makespan_ratio_shmem_over_msg"].values()
    )

    # Refactor overhead: live msg-backend speedup vs the committed one.
    from repro.apps.enginebench import run_engine_bench

    committed = json.loads(ENGINE_BENCH_FILE.read_text())
    committed_speedup = committed["speedups"]["workqueue@256"]
    live = run_engine_bench((256,), ("workqueue",), jobs_per_proc=16)
    live_speedup = live["speedups"]["workqueue@256"]
    ratio = live_speedup / committed_speedup
    results["refactor_overhead"] = {
        "program": "workqueue",
        "nprocs": 256,
        "committed_speedup": committed_speedup,
        "live_speedup": live_speedup,
        "ratio": round(ratio, 3),
        "tolerance": REFACTOR_OVERHEAD_TOLERANCE,
    }
    emit(
        "P5 — refactor overhead (msg backend vs pre-split recording)",
        ["program", "P", "committed", "live", "ratio"],
        [["workqueue", 256, committed_speedup, live_speedup,
          f"{ratio:.3f}"]],
    )
    assert ratio >= 1.0 - REFACTOR_OVERHEAD_TOLERANCE, (
        f"msg backend speedup {live_speedup}x is more than "
        f"{REFACTOR_OVERHEAD_TOLERANCE:.0%} below the committed "
        f"{committed_speedup}x"
    )

    write_json_atomic(BENCH_FILE, results)
    benchmark.extra_info["makespan_ratios"] = (
        results["makespan_ratio_shmem_over_msg"]
    )
    benchmark.extra_info["refactor_overhead_ratio"] = ratio
    benchmark.extra_info["bench_file"] = str(BENCH_FILE)
    benchmark.pedantic(
        lambda: run_backend_bench(nprocs_list=(4,)), rounds=1, iterations=1,
    )
