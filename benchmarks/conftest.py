"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one of the paper's artifacts (figure,
worked example, or an ablation of a design choice).  Wall-clock time is
measured by pytest-benchmark; the scientifically meaningful quantities —
virtual makespan, message counts, bytes, idle time — are attached as
``extra_info`` and printed as a table (run with ``-s`` to see the tables
inline; EXPERIMENTS.md records the canonical numbers).
"""

from __future__ import annotations

import sys


def emit(title: str, header: list[str], rows: list[list]) -> None:
    """Print one experiment table to stdout."""
    out = sys.stdout
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title}", file=out)
    print(line, file=out)
    print("-" * len(line), file=out)
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)), file=out)
