"""E1 — the section-2.2 worked example: ``A[i] = A[i] + B[i]``.

Sweeps the problem size for aligned (BLOCK/BLOCK) and misaligned
(BLOCK/CYCLIC) operand distributions, comparing the naive owner-computes
translation with the optimized program.  Expected shape (the paper's
prose): aligned optimization removes *all* messages and the ownership
guard; misaligned optimization vectorizes per-element messages into at
most one message per communicating processor pair.
"""

import numpy as np
from conftest import emit

from repro import Interpreter, MachineModel, optimize, parse_program, translate

NPROCS = 4
MODEL = MachineModel()

SRC = """
array A[1:{n}] dist (BLOCK) seg (1)
array B[1:{n}] dist ({bdist}) seg (1)
scalar n = {n}

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""


def build(n: int, bdist: str):
    prog = parse_program(SRC.format(n=n, bdist=bdist))
    naive = translate(prog, NPROCS)
    opt = optimize(naive, NPROCS).program
    return naive, opt


def run(program, n: int):
    it = Interpreter(program, NPROCS, model=MODEL)
    a0 = np.arange(1.0, n + 1)
    b0 = 2.0 * np.arange(1.0, n + 1)
    it.write_global("A", a0)
    it.write_global("B", b0)
    stats = it.run()
    assert np.array_equal(it.read_global("A"), a0 + b0)
    return stats


def test_e1_table(benchmark):
    rows = []
    for bdist in ("BLOCK", "CYCLIC"):
        for n in (8, 32, 128):
            naive, opt = build(n, bdist)
            s_naive = run(naive, n)
            s_opt = run(opt, n)
            rows.append([
                bdist, n,
                s_naive.total_messages, f"{s_naive.makespan:.0f}",
                s_opt.total_messages, f"{s_opt.makespan:.0f}",
                f"{s_naive.makespan / s_opt.makespan:.1f}x",
            ])
    emit(
        "E1 / section 2.2 — naive vs optimized owner-computes",
        ["B dist", "n", "naive msgs", "naive time", "opt msgs", "opt time",
         "speedup"],
        rows,
    )
    # Paper shape: aligned -> zero messages; misaligned -> <= P*(P-1) pair
    # messages regardless of n.
    for bdist, expect_zero in (("BLOCK", True), ("CYCLIC", False)):
        _, opt = build(128, bdist)
        s = run(opt, 128)
        if expect_zero:
            assert s.total_messages == 0
        else:
            assert 0 < s.total_messages <= NPROCS * (NPROCS - 1)
    benchmark.pedantic(lambda: run(build(32, "CYCLIC")[1], 32),
                       rounds=1, iterations=1)


def test_e1_optimized_misaligned_bench(benchmark):
    _, opt = build(64, "CYCLIC")
    stats = benchmark(run, opt, 64)
    benchmark.extra_info["virtual_makespan"] = stats.makespan
    benchmark.extra_info["messages"] = stats.total_messages


def test_e1_naive_misaligned_bench(benchmark):
    naive, _ = build(64, "CYCLIC")
    stats = benchmark(run, naive, 64)
    benchmark.extra_info["virtual_makespan"] = stats.makespan
    benchmark.extra_info["messages"] = stats.total_messages
