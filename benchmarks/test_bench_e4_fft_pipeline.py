"""E4 — the section-4 3-D FFT optimization pipeline.

Runs the paper's three program stages (naive / compute-rules-eliminated /
pipelined) at the paper's size (4^3 on 4 processors) and larger, under the
default and a communication-heavy machine.  Expected shapes:

* stage 1 < stage 0 in makespan (guard lookups removed — the paper's
  "much more efficient SPMD program");
* stage 2 lowers mean processor finish time and early receivers' idle by
  overlapping the redistribution with computation; the *makespan* stays
  bound by the transpose's tail message, matching the paper's caveat that
  improvements "depend largely on the capabilities of the run-time
  communication library".
"""

import numpy as np
from conftest import emit

from repro.apps.fft3d import run_fft3d
from repro.machine import MachineModel

COMM_HEAVY = MachineModel(alpha=2000, per_byte=5.0, o_send=50, o_recv=50)


def profile(n, nprocs, model):
    out = []
    for stage in (0, 1, 2):
        r = run_fft3d(n, nprocs, stage, model=model)
        assert r.correct
        out.append(r)
    return out


def test_e4_table(benchmark):
    rows = []
    for n, nprocs, model, label in [
        (4, 4, MachineModel(), "default"),
        (8, 4, MachineModel(), "default"),
        (16, 4, COMM_HEAVY, "comm-heavy"),
    ]:
        for r in profile(n, nprocs, model):
            mean_finish = np.mean([p.finish_time for p in r.stats.procs])
            min_idle = min(p.idle_time for p in r.stats.procs)
            rows.append([
                f"{n}^3/{nprocs} {label}", r.stage,
                f"{r.makespan:.0f}", r.messages,
                f"{mean_finish:.0f}", f"{r.stats.total_idle_time:.0f}",
                f"{min_idle:.0f}",
            ])
    emit(
        "E4 / section 4 — 3-D FFT optimization stages",
        ["config", "stage", "makespan", "msgs", "mean finish", "total idle",
         "min idle"],
        rows,
    )
    # Shapes asserted:
    s = profile(4, 4, MachineModel())
    assert s[1].makespan < s[0].makespan  # compute-rule elimination pays
    h = profile(16, 4, COMM_HEAVY)
    mean1 = np.mean([p.finish_time for p in h[1].stats.procs])
    mean2 = np.mean([p.finish_time for p in h[2].stats.procs])
    assert mean2 < mean1  # pipelining overlaps transfer with compute
    benchmark.pedantic(
        lambda: run_fft3d(4, 4, 2, model=MachineModel()), rounds=1, iterations=1
    )


def test_e4_stage0_bench(benchmark):
    r = benchmark(run_fft3d, 8, 4, 0, model=MachineModel())
    assert r.correct
    benchmark.extra_info["virtual_makespan"] = r.makespan


def test_e4_stage2_bench(benchmark):
    r = benchmark(run_fft3d, 8, 4, 2, model=MachineModel())
    assert r.correct
    benchmark.extra_info["virtual_makespan"] = r.makespan
