"""F4 — Figure 4: the 3-D FFT's data layout and repartitioning.

Regenerates the figure's data-to-segment assignment and benchmarks the
compile-time redistribution planner at the paper's size and larger.
"""

from conftest import emit

from repro import ProcessorGrid, Segmentation, plan_redistribution, section
from repro.distributions import Block, Collapsed, Distribution
from repro.report import figure4_layouts


def make_plan(n: int, nprocs: int):
    grid = ProcessorGrid((nprocs,))
    space = section((1, n), (1, n), (1, n))
    src = Distribution(space, (Collapsed(), Collapsed(), Block()), grid)
    dst = Distribution(space, (Collapsed(), Block(), Collapsed()), grid)
    return plan_redistribution(
        src, dst, segmentation=Segmentation(src, (n, 1, 1))
    )


def test_fig4_plan_bench(benchmark):
    plan = benchmark(make_plan, 4, 4)
    assert plan.message_count == 12
    assert plan.stationary_elements == 16
    print()
    print(figure4_layouts(4, 4))
    rows = []
    for n, nprocs in [(4, 4), (8, 4), (16, 8), (32, 8)]:
        p = make_plan(n, nprocs)
        rows.append([
            f"{n}^3 on {nprocs}", p.message_count, p.total_elements_moved,
            p.stationary_elements,
        ])
    emit(
        "F4 / Figure 4 — redistribution plans (*,*,BLOCK) -> (*,BLOCK,*)",
        ["size", "moves", "elements moved", "elements stationary"],
        rows,
    )
    benchmark.extra_info["paper_case_moves"] = 12
