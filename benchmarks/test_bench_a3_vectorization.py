"""A3 — ablation: message vectorization (paper section 2.2).

"Even if they cannot be eliminated, the compiler may be able to move them
out of the computation loop and combine or vectorize the messages."

Two views of the same effect:

* the compiler pass on the §2.2 loop — per-element messages (O(n))
  versus per-processor-pair messages (O(P²), constant in n);
* the hand-written end point on a stencil — the Jacobi halo exchange,
  whose message count depends only on the processor count and sweep count.
"""

import numpy as np
from conftest import emit

from repro import Interpreter, MachineModel, optimize, parse_program, translate
from repro.apps.jacobi import run_jacobi
from repro.core.opt import Cleanup, MessageVectorization, PassManager

NPROCS = 4
MODEL = MachineModel()

SRC = """
array A[1:{n}] dist (BLOCK) seg (1)
array B[1:{n}] dist (CYCLIC) seg (1)
scalar n = {n}

do i = 1, n
  A[i] = A[i] + B[i]
enddo
"""


def run(program, n):
    it = Interpreter(program, NPROCS, model=MODEL)
    a0 = np.zeros(n)
    b0 = np.arange(float(n))
    it.write_global("A", a0)
    it.write_global("B", b0)
    stats = it.run()
    assert np.array_equal(it.read_global("A"), b0)
    return stats


def variants(n):
    naive = translate(parse_program(SRC.format(n=n)), NPROCS)
    vec = PassManager([MessageVectorization(), Cleanup()]).run(naive, NPROCS).program
    return naive, vec


def test_a3_vectorization_sweep(benchmark):
    rows = []
    for n in (16, 64, 256):
        naive, vec = variants(n)
        s_n = run(naive, n)
        s_v = run(vec, n)
        rows.append([
            n, s_n.total_messages, s_v.total_messages,
            f"{s_n.makespan:.0f}", f"{s_v.makespan:.0f}",
            f"{s_n.makespan / s_v.makespan:.1f}x",
        ])
    emit(
        "A3 / section 2.2 — message vectorization (BLOCK vs CYCLIC operands)",
        ["n", "naive msgs", "vectorized msgs", "naive time", "vec time",
         "speedup"],
        rows,
    )
    # Vectorized message count is bounded by processor pairs, not n.
    _, vec = variants(256)
    assert run(vec, 256).total_messages <= NPROCS * (NPROCS - 1)
    assert run(variants(256)[0], 256).total_messages == 256

    halo = run_jacobi(128, NPROCS, 2, "halo", model=MODEL)
    naive_j = run_jacobi(128, NPROCS, 2, "naive", model=MODEL)
    rows2 = [[
        "jacobi n=128, 2 sweeps", naive_j.messages, halo.messages,
        f"{naive_j.makespan:.0f}", f"{halo.makespan:.0f}",
        f"{naive_j.makespan / halo.makespan:.1f}x",
    ]]
    emit(
        "A3 / stencil end point — naive translation vs halo exchange",
        ["workload", "naive msgs", "halo msgs", "naive time", "halo time",
         "speedup"],
        rows2,
    )
    assert halo.messages < naive_j.messages / 10
    benchmark.pedantic(lambda: run(variants(64)[1], 64), rounds=1, iterations=1)


def test_a3_vectorized_bench(benchmark):
    _, vec = variants(64)
    stats = benchmark(run, vec, 64)
    benchmark.extra_info["messages"] = stats.total_messages


def test_a3_naive_bench(benchmark):
    naive, _ = variants(64)
    stats = benchmark(run, naive, 64)
    benchmark.extra_info["messages"] = stats.total_messages
