"""E6 — dynamic load balancing through the message pool (paper section 2.7).

Compares the paper's dynamic pool (unspecified-recipient sends claimed by
idle workers) against a static round-robin schedule over a job-cost skew
sweep.  Expected shape: near parity for uniform costs (the pool pays a
little request latency), growing wins as skew increases.
"""

import numpy as np
from conftest import emit

from repro.apps.workqueue import make_job_costs, run_workqueue
from repro.machine import MachineModel

MODEL = MachineModel()
NJOBS = 48
NPROCS = 5


def imbalance(result) -> float:
    compute = [p.compute_time for p in result.stats.procs[1:]]
    return max(compute) / (sum(compute) / len(compute))


def test_e6_skew_sweep(benchmark):
    rows = []
    for skew in (1.0, 2.0, 4.0, 8.0):
        costs = make_job_costs(NJOBS, skew=skew, seed=5)
        stat = run_workqueue(NJOBS, NPROCS, scheme="static", costs=costs, model=MODEL)
        dyn = run_workqueue(NJOBS, NPROCS, scheme="dynamic", costs=costs, model=MODEL)
        gain = (stat.makespan - dyn.makespan) / stat.makespan * 100
        rows.append([
            skew,
            f"{stat.makespan:.0f}", f"{imbalance(stat):.2f}",
            f"{dyn.makespan:.0f}", f"{imbalance(dyn):.2f}",
            f"{gain:+.1f}%",
        ])
    emit(
        "E6 / section 2.7 — static schedule vs dynamic ownership pool",
        ["skew", "static time", "static imbal", "dynamic time",
         "dynamic imbal", "gain"],
        rows,
    )
    costs = make_job_costs(NJOBS, skew=8.0, seed=5)
    stat = run_workqueue(NJOBS, NPROCS, scheme="static", costs=costs, model=MODEL)
    dyn = run_workqueue(NJOBS, NPROCS, scheme="dynamic", costs=costs, model=MODEL)
    assert dyn.makespan < stat.makespan
    assert imbalance(dyn) < imbalance(stat)
    benchmark.pedantic(
        lambda: run_workqueue(NJOBS, NPROCS, scheme="dynamic", costs=costs,
                              model=MODEL),
        rounds=1, iterations=1,
    )


def test_e6_dynamic_bench(benchmark):
    costs = make_job_costs(NJOBS, skew=4.0, seed=5)
    r = benchmark(
        run_workqueue, NJOBS, NPROCS, scheme="dynamic", costs=costs, model=MODEL
    )
    benchmark.extra_info["virtual_makespan"] = r.makespan
