"""A4 — ablation: compute-rule evaluation overhead (paper sections 2.4, 3).

"This allows optimizations to remove run-time checks when it can be
determined they are unnecessary" — the whole point of compute-rule
elimination.  A purely local loop is run in three forms: guarded by
``iown`` every iteration, localized to ``mylb..myub`` bounds (one intrinsic
pair per loop), and fully unguarded over precomputed bounds.  The measured
gap is exactly the run-time symbol-table lookup cost the compiler removes;
it grows linearly with the iteration count.
"""

import numpy as np
from conftest import emit

from repro import Interpreter, MachineModel, parse_program

NPROCS = 4
MODEL = MachineModel()

GUARDED = """
array A[1:{n}] dist (BLOCK) seg ({seg})

do i = 1, {n}
  iown(A[i]) : {{ A[i] = A[i] + 1 }}
enddo
"""

LOCALIZED = """
array A[1:{n}] dist (BLOCK) seg ({seg})

do i = max(1, mylb(A[*], 1)), min({n}, myub(A[*], 1))
  A[i] = A[i] + 1
enddo
"""


def run(src_template: str, n: int):
    seg = n // NPROCS
    it = Interpreter(
        parse_program(src_template.format(n=n, seg=seg)), NPROCS, model=MODEL
    )
    it.write_global("A", np.zeros(n))
    stats = it.run()
    assert np.all(it.read_global("A") == 1.0)
    return stats


def test_a4_guard_overhead_sweep(benchmark):
    rows = []
    for n in (16, 64, 256, 1024):
        g = run(GUARDED, n)
        l = run(LOCALIZED, n)
        rows.append([
            n, f"{g.makespan:.0f}", f"{l.makespan:.0f}",
            f"{g.makespan / l.makespan:.2f}x",
        ])
    emit(
        "A4 / sections 2.4+3 — run-time compute-rule cost vs localized bounds",
        ["n", "guarded makespan", "localized makespan", "guard overhead"],
        rows,
    )
    # Overhead ratio approaches the per-iteration guard/work cost ratio and
    # stays strictly above 1 at every size.
    for n in (16, 1024):
        assert run(GUARDED, n).makespan > run(LOCALIZED, n).makespan
    benchmark.pedantic(lambda: run(LOCALIZED, 256), rounds=1, iterations=1)


def test_a4_guarded_bench(benchmark):
    stats = benchmark(run, GUARDED, 256)
    benchmark.extra_info["virtual_makespan"] = stats.makespan


def test_a4_localized_bench(benchmark):
    stats = benchmark(run, LOCALIZED, 256)
    benchmark.extra_info["virtual_makespan"] = stats.makespan
