"""P1 — engine hot-path scaling (O(log P) scheduling, indexed matching).

Runs the workqueue (section 2.7) and FFT-pipeline (section 4) node
programs at nprocs in {8, 64, 256}, measuring wall-clock and effects/sec
on the indexed engine **and live against the seed-reference engine** (a
faithful reimplementation of the pre-rewrite O(P)-scan hot path).
Because the baseline runs on the same machine in the same process, the
recorded speedups are machine-independent.

The sweep doubles as a semantics regression: both engines must agree
exactly on virtual makespan, message counts, and effect counts
(``run_engine_bench`` raises otherwise).

Results are recorded to ``BENCH_engine.json`` at the repo root; compare a
later engine against it with ``python -m repro bench --diff``.
"""

from pathlib import Path

from conftest import emit

from repro.report.record import write_json_atomic

from repro.apps.enginebench import format_bench, run_engine_bench

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Acceptance bar: the indexed engine must process effects at least this
#: many times faster than the seed engine on the workqueue at P=256.
REQUIRED_SPEEDUP_AT_256 = 2.0

#: Acceptance bar for the batched columnar core: at least this many times
#: the scalar seed-reference baseline's throughput on the workqueue at
#: P=64 (the ~40k effects/sec dispatch ceiling the rewrite breaks).
REQUIRED_BATCHED_RATIO_AT_64 = 5.0


def _emit_results(results: dict) -> None:
    rows = [
        [c["program"], c["nprocs"], c["engine"], f"{c['wall_s']:.3f}",
         c["effects"], c["effects_per_sec"], f"{c['makespan']:.0f}"]
        for c in results["cases"]
    ]
    emit(
        "P1 — engine hot-path scaling (indexed vs seed reference)",
        ["program", "P", "engine", "wall_s", "effects", "eff/sec", "makespan"],
        rows,
    )


def test_p1_smoke_small_scale(benchmark):
    """Quick CI-friendly check: both engines agree and the harness runs."""
    results = run_engine_bench((8,), ("workqueue", "fft"), jobs_per_proc=8)
    _emit_results(results)
    by_engine = {}
    for c in results["cases"]:
        by_engine.setdefault((c["program"], c["nprocs"]), {})[c["engine"]] = c
    for (prog, p), engines in by_engine.items():
        assert {"indexed", "seed-reference"} <= set(engines), (prog, p)
        assert engines["indexed"]["makespan"] == engines["seed-reference"]["makespan"]
        assert engines["indexed"]["effects"] > 0
    benchmark.pedantic(
        lambda: run_engine_bench((8,), ("workqueue",), jobs_per_proc=8,
                                 seed_reference=False),
        rounds=1, iterations=1,
    )


def test_p1_batched_dispatch_ratio():
    """CI ratio gate: batched core >= 5x the scalar baseline on wq@64.

    The denominator is the :class:`SeedReferenceEngine` — the scalar
    engine with the seed's matching path, i.e. the recorded pre-rewrite
    dispatch ceiling this PR's columnar core is meant to break.  Both
    sides run live in this process, interleaved best-of-three, so the
    gate measures the algorithmic ratio rather than host speed.  The
    batched/indexed-scalar mode ratio is printed for context but not
    gated (it sits lower because the indexed scalar engine shares most
    transport/symtab improvements).
    """
    from repro.apps.enginebench import (
        SeedReferenceEngine, _batched_engine, _run_case,
    )
    from repro.machine.engine import Engine as IndexedEngine

    # Warm both paths before timing.
    for cls in (IndexedEngine, _batched_engine, SeedReferenceEngine):
        _run_case("workqueue", 2, "warmup", cls, jobs_per_proc=2)

    best: dict[str, int] = {}
    for _ in range(3):  # interleaved so drift hits all variants equally
        for name, cls in (
            ("batched", _batched_engine),
            ("scalar", IndexedEngine),
            ("seed", SeedReferenceEngine),
        ):
            case = _run_case("workqueue", 64, name, cls, jobs_per_proc=16)
            best[name] = max(best.get(name, 0), case.effects_per_sec)

    assert best["seed"] > 0
    ratio = best["batched"] / best["seed"]
    print(
        f"\nwq@64 effects/sec — batched {best['batched']}, "
        f"indexed-scalar {best['scalar']}, seed-reference {best['seed']}; "
        f"batched/seed {ratio:.2f}x, "
        f"batched/indexed {best['batched'] / max(best['scalar'], 1):.2f}x"
    )
    assert ratio >= REQUIRED_BATCHED_RATIO_AT_64, (
        f"batched core is only {ratio:.2f}x the scalar seed baseline on "
        f"workqueue@64 (need >= {REQUIRED_BATCHED_RATIO_AT_64}x)"
    )


def test_p1_engine_scaling_full(benchmark):
    """The full sweep: records BENCH_engine.json, asserts the 2x bar."""
    results = run_engine_bench((8, 64, 256), ("workqueue", "fft"),
                               jobs_per_proc=16)
    _emit_results(results)
    print(format_bench(results))

    speedup = results["speedups"]["workqueue@256"]
    assert speedup >= REQUIRED_SPEEDUP_AT_256, (
        f"indexed engine is only {speedup}x the seed engine at P=256 "
        f"(need >= {REQUIRED_SPEEDUP_AT_256}x)"
    )
    # Throughput must not collapse with P: the indexed engine at P=256
    # should sustain at least half its P=8 effects/sec (the seed engine
    # drops to well under that).
    rate = {
        (c["program"], c["nprocs"]): c["effects_per_sec"]
        for c in results["cases"] if c["engine"] == "indexed"
    }
    assert rate[("workqueue", 256)] >= 0.5 * rate[("workqueue", 8)]

    write_json_atomic(BENCH_FILE, results)
    benchmark.extra_info["speedups"] = results["speedups"]
    benchmark.extra_info["bench_file"] = str(BENCH_FILE)
    benchmark.pedantic(
        lambda: run_engine_bench((64,), ("workqueue",), jobs_per_proc=16,
                                 seed_reference=False),
        rounds=1, iterations=1,
    )
