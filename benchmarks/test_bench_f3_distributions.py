"""F3 — Figure 3: distributions and local segmentations of a 4x8 array.

Regenerates the figure's four panels and benchmarks the geometric layer:
owner computation and segment enumeration across the panel configurations.
"""

from conftest import emit

from repro import ProcessorGrid, Segmentation, section
from repro.distributions import Block, Collapsed, Distribution
from repro.report import figure3_maps

PANELS = [
    ("(BLOCK,BLOCK) seg (2,1)", (Block(), Block()), (2, 1)),
    ("(BLOCK,BLOCK) seg (1,4)", (Block(), Block()), (1, 4)),
    ("(*,BLOCK) seg (2,1)", (Collapsed(), Block()), (2, 1)),
    ("(*,BLOCK) seg (4,1)", (Collapsed(), Block()), (4, 1)),
]


def build_panels():
    grid = ProcessorGrid((2, 2))
    space = section((1, 4), (1, 8))
    out = []
    for title, specs, seg_shape in PANELS:
        dist = Distribution(space, specs, grid)
        seg = Segmentation(dist, seg_shape)
        counts = [seg.segment_count(p) for p in grid.pids()]
        owners = [dist.owner(pt) for pt in space]
        out.append((title, counts, owners))
    return out


def test_fig3_panels_bench(benchmark):
    panels = benchmark(build_panels)
    rows = []
    for title, counts, owners in panels:
        assert sum(owners.count(p) for p in range(4)) == 32
        rows.append([title, counts, "exact cover"])
    emit(
        "F3 / Figure 3 — 4x8 array on a 2x2 grid",
        ["panel", "#segments per P1..P4", "ownership"],
        rows,
    )
    print()
    print(figure3_maps())
    # P3's segment counts in the paper's panels: 4, 2, 4, 2.
    grid = ProcessorGrid((2, 2))
    space = section((1, 4), (1, 8))
    p3_counts = [
        Segmentation(Distribution(space, sp, grid), sh).segment_count(2)
        for _, sp, sh in PANELS
    ]
    assert p3_counts == [4, 2, 4, 2]
