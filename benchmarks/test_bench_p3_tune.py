"""P3 — the staged tuning pipeline vs the paper's hand stages.

Runs ``repro.tune`` on the *naive* section-4 FFT and records, per
configuration, the BENCH_tune schema-2 row: space size, candidates
scored, shortlist size, prefilter precision (static-rank vs engine-rank
Spearman correlation), shard count, engine evaluations, store-backed
cache accounting, and the tuned makespan next to the naive baseline and
both hand-optimized stages.  Each configuration then *replays* against
the same artifact store in a fresh cache — the replay's hit accounting
comes from the shared store, not the in-memory memo, so a warm replay
must show every evaluation served hot and zero engine runs (the
cache-accounting fix this schema version exists for).

Acceptance bars (the ISSUE's): the tuned placement must match or beat
hand stage 2 everywhere; at n=16, P=16 the tuner must rediscover the
paper's ``(*, BLOCK, *)`` stage-2 switch and beat the naive program;
and the warm replay must be 100% store-served.

Results are recorded to ``BENCH_tune.json`` at the repo root.
"""

import time
from pathlib import Path

from conftest import emit

from repro.report.record import write_json_atomic

from repro.apps.fft3d import fft3d_source, run_fft3d
from repro.tune import TUNE_SCHEMA, EvalCache, tune

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_tune.json"

#: (n, nprocs) configurations (generalized section-4 forms).  The last
#: one is the acceptance configuration: the paper's own scale.
CONFIGS = [(8, 4), (16, 16)]


def _run_config(n: int, nprocs: int, store_root: str) -> dict:
    hand = {s: run_fft3d(n, nprocs, s).makespan for s in (1, 2)}
    src = fft3d_source(n, nprocs, 0)

    t0 = time.perf_counter()
    res = tune(src, nprocs, store=store_root)
    wall = time.perf_counter() - t0

    # Warm replay: fresh in-memory cache, same store.  Every engine
    # evaluation must now be served by the shared store.
    replay_cache = EvalCache()
    again = tune(src, nprocs, store=store_root, cache=replay_cache)
    assert again.canonical_doc() == res.canonical_doc(), (n, nprocs)

    doc = res.canonical_doc()
    doc.update({
        "n": n,
        "nprocs": nprocs,
        "wall_s": round(wall, 3),
        "shards": res.shards,
        "hand_stage1_makespan": hand[1],
        "hand_stage2_makespan": hand[2],
        "cache_hits": res.cache.hits,
        "cache_misses": res.cache.misses,
        "cache_hit_rate": round(res.cache.hit_rate, 3),
        "store_hits": res.cache.store_hits,
        "store_misses": res.cache.store_misses,
        "engine_runs": res.cache.engine_runs,
        "replay_store_hits": replay_cache.store_hits,
        "replay_store_misses": replay_cache.store_misses,
        "replay_store_hit_rate": round(replay_cache.store_hit_rate, 3),
        "replay_engine_runs": replay_cache.engine_runs,
    })
    return doc


def test_p3_tuner_vs_hand_stages(benchmark, tmp_path):
    cases = [
        _run_config(n, p, str(tmp_path / f"store-{n}-{p}"))
        for n, p in CONFIGS
    ]

    emit(
        "P3 — staged tuning pipeline vs hand stages (naive section-4 FFT)",
        ["n", "P", "wall_s", "space", "short", "evals", "rank_corr",
         "replay_hot", "naive", "hand2", "tuned", "speedup"],
        [
            [c["n"], c["nprocs"], c["wall_s"], c["space_size"],
             c["shortlist_size"], c["evaluated"],
             ("-" if c["rank_correlation"] is None
              else f"{c['rank_correlation']:+.2f}"),
             f"{c['replay_store_hit_rate']:.0%}",
             f"{c['baseline_makespan']:.0f}",
             f"{c['hand_stage2_makespan']:.0f}", f"{c['makespan']:.0f}",
             f"{c['speedup']:.2f}x"]
            for c in cases
        ],
    )

    for c in cases:
        label = f"n={c['n']} P={c['nprocs']}"
        assert c["schema"] == TUNE_SCHEMA, label
        assert c["semantics_preserved"], label
        # the ISSUE's bar: no worse than the paper's final hand stage
        assert c["makespan"] <= c["hand_stage2_makespan"], (label, c)
        assert c["makespan"] <= c["baseline_makespan"], (label, c)
        # the memoized oracle must actually be hit (winner confirmation)
        assert c["cache_hits"] > 0, (label, c)
        # a warm replay is served entirely by the shared store: every
        # lookup hot, nothing recomputed (the schema-1 counter read the
        # in-memory memo and reported ~0.167 here regardless of warmth).
        assert c["replay_store_hit_rate"] == 1.0, (label, c)
        assert c["replay_engine_runs"] == 0, (label, c)

    # The acceptance configuration: the paper's own scale must rediscover
    # the (*,*,BLOCK) -> (*,BLOCK,*) stage-2 switch and beat naive.
    accept = next(c for c in cases if (c["n"], c["nprocs"]) == (16, 16))
    assert accept["layouts"][0].startswith("(*, *, BLOCK)"), accept
    assert any(l.startswith("(*, BLOCK, *)") for l in accept["layouts"]), accept
    assert accept["makespan"] < accept["baseline_makespan"], accept

    write_json_atomic(BENCH_FILE, {"schema": TUNE_SCHEMA, "cases": cases})
    benchmark.extra_info["bench_file"] = str(BENCH_FILE)
    benchmark.pedantic(
        lambda: tune(fft3d_source(8, 4, 0), 4, top_k=2),
        rounds=1, iterations=1,
    )
