"""P3 — automatic placement tuning (the tuner vs the paper's hand stages).

Runs ``repro.tune`` on the *naive* section-4 FFT and records, per
configuration: tuner wall-clock, candidate paths considered, engine
evaluations, oracle cache hit rate, and the tuned makespan next to the
naive baseline and both hand-optimized stages.  The acceptance bars are
the ISSUE's: the tuned placement must match or beat hand stage 2, and
the memoized oracle must be doing real work (hit rate > 0).

Results are recorded to ``BENCH_tune.json`` at the repo root.
"""

import time
from pathlib import Path

from conftest import emit

from repro.report.record import write_json_atomic

from repro.apps.fft3d import run_fft3d
from repro.apps.fft3d import fft3d_source
from repro.tune import tune

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_tune.json"

#: (n, nprocs) configurations (generalized section-4 forms).
CONFIGS = [(8, 4), (16, 4)]


def _run_config(n: int, nprocs: int) -> dict:
    hand = {s: run_fft3d(n, nprocs, s).makespan for s in (1, 2)}
    t0 = time.perf_counter()
    res = tune(fft3d_source(n, nprocs, 0), nprocs)
    wall = time.perf_counter() - t0
    return {
        "n": n,
        "nprocs": nprocs,
        "wall_s": round(wall, 3),
        "candidates_considered": res.candidates_considered,
        "engine_evaluations": res.evaluated,
        "cache_hits": res.cache.hits,
        "cache_misses": res.cache.misses,
        "cache_hit_rate": round(res.cache.hit_rate, 3),
        "naive_makespan": res.baseline_makespan,
        "hand_stage1_makespan": hand[1],
        "hand_stage2_makespan": hand[2],
        "tuned_makespan": res.makespan,
        "speedup_vs_naive": round(res.speedup, 3),
        "realization": res.realization,
        "layouts": [c.key for c in res.phase_layouts],
        "semantics_preserved": res.semantics_preserved,
    }


def test_p3_tuner_vs_hand_stages(benchmark):
    cases = [_run_config(n, p) for n, p in CONFIGS]

    emit(
        "P3 — placement tuner vs hand stages (naive section-4 FFT)",
        ["n", "P", "wall_s", "paths", "evals", "hit_rate",
         "naive", "hand1", "hand2", "tuned", "speedup"],
        [
            [c["n"], c["nprocs"], c["wall_s"], c["candidates_considered"],
             c["engine_evaluations"], c["cache_hit_rate"],
             f"{c['naive_makespan']:.0f}", f"{c['hand_stage1_makespan']:.0f}",
             f"{c['hand_stage2_makespan']:.0f}", f"{c['tuned_makespan']:.0f}",
             f"{c['speedup_vs_naive']:.2f}x"]
            for c in cases
        ],
    )

    for c in cases:
        label = f"n={c['n']} P={c['nprocs']}"
        assert c["semantics_preserved"], label
        # the ISSUE's bar: no worse than the paper's final hand stage
        assert c["tuned_makespan"] <= c["hand_stage2_makespan"], (label, c)
        assert c["tuned_makespan"] <= c["naive_makespan"], (label, c)
        # the memoized oracle must actually be hit (winner confirmation)
        assert c["cache_hit_rate"] > 0, (label, c)

    write_json_atomic(BENCH_FILE, {"cases": cases})
    benchmark.extra_info["bench_file"] = str(BENCH_FILE)
    benchmark.pedantic(
        lambda: tune(fft3d_source(8, 4, 0), 4, top_k=2),
        rounds=1, iterations=1,
    )
