"""F1 — Figure 1: the rules governing execution, as an executable check.

Regenerates the paper's semantics table by running a micro-scenario per
rule on the engine/run-time; the benchmark measures the cost of the whole
semantics suite (dominated by engine startup/shutdown per rule).
"""

from conftest import emit

from repro.report import figure1_check


def test_fig1_rules_bench(benchmark):
    rows = benchmark(figure1_check)
    assert all(ok for _, _, ok in rows)
    emit(
        "F1 / Figure 1 — rules governing execution on processor p",
        ["rule", "behaviour", "verified"],
        [[r, d, "PASS" if ok else "FAIL"] for r, d, ok in rows],
    )
    benchmark.extra_info["rules_checked"] = len(rows)
