"""P7 — the artifact-store service: warm-cache replay and job latency.

Runs the standard serve workload (compile/check/run over the shipped
apps) through :class:`~repro.serve.service.ServeSession` against one
shared store: one cold round that populates the cache, then ten warm
replay rounds in fresh sessions — the repeated-compile traffic pattern
the ROADMAP's serve item describes.  Records cache hit rate, retry
counts, and p50/p99 job latency to ``BENCH_serve.json``.

Acceptance bars (the ISSUE's): the warm-replay hit rate must be >= 90%,
every job must end in a clean status, and warm hits must be served
orders of magnitude faster than cold computes.
"""

import time
from pathlib import Path

from conftest import emit

from repro.report.record import write_json_atomic
from repro.serve import ServeSession, SupervisorConfig, demo_workload
from repro.serve.service import latency_percentiles

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

NPROCS = 4
WARM_ROUNDS = 10


def _run_round(store_root: str, label: str) -> dict:
    """One fresh session over the standard workload; returns its stats."""
    session = ServeSession(
        str(store_root),
        SupervisorConfig(workers=2, seed=7, timeout_s=120.0),
    )
    specs = demo_workload(nprocs=NPROCS, rounds=1, seed=7,
                          include_tune=True)
    t0 = time.perf_counter()
    outcomes = session.run_jobs(specs)
    wall = time.perf_counter() - t0
    served = [o for o in outcomes if o.status in ("ok", "cached")]
    assert len(served) == len(specs), [o.as_doc() for o in outcomes]
    by_kind: dict = {}
    for spec, o in zip(specs, outcomes):
        k = by_kind.setdefault(spec.kind, {"jobs": 0, "cached": 0})
        k["jobs"] += 1
        k["cached"] += o.status == "cached"
    return {
        "round": label,
        "jobs": len(outcomes),
        "cached": sum(o.status == "cached" for o in outcomes),
        "retries": sum(o.retries for o in outcomes),
        "wall_s": round(wall, 4),
        "latencies": [o.latency_s for o in outcomes],
        "by_kind": by_kind,
    }


def test_p7_serve_warm_cache_replay(benchmark, tmp_path):
    store_root = tmp_path / "store"
    cold = _run_round(store_root, "cold")
    warm = [_run_round(store_root, f"warm-{i + 1}")
            for i in range(WARM_ROUNDS)]

    warm_jobs = sum(r["jobs"] for r in warm)
    warm_hits = sum(r["cached"] for r in warm)
    hit_rate = warm_hits / warm_jobs
    warm_by_kind: dict = {}
    for r in warm:
        for kind, k in r["by_kind"].items():
            agg = warm_by_kind.setdefault(kind, {"jobs": 0, "cached": 0})
            agg["jobs"] += k["jobs"]
            agg["cached"] += k["cached"]
    for agg in warm_by_kind.values():
        agg["hit_rate"] = round(agg["cached"] / agg["jobs"], 4)
    cold_lat = latency_percentiles(cold["latencies"])
    warm_lat = latency_percentiles(
        [x for r in warm for x in r["latencies"]]
    )

    emit(
        "P7 — serve warm-cache replay (1 cold + "
        f"{WARM_ROUNDS} warm rounds, P={NPROCS})",
        ["phase", "jobs", "hit_rate", "retries", "p50_ms", "p99_ms"],
        [
            ["cold", cold["jobs"], f"{cold['cached'] / cold['jobs']:.0%}",
             cold["retries"], f"{cold_lat['p50_s'] * 1e3:.2f}",
             f"{cold_lat['p99_s'] * 1e3:.2f}"],
            ["warm", warm_jobs, f"{hit_rate:.0%}",
             sum(r["retries"] for r in warm),
             f"{warm_lat['p50_s'] * 1e3:.2f}",
             f"{warm_lat['p99_s'] * 1e3:.2f}"],
        ],
    )

    # The ISSUE's bars: >= 90% warm hit rate, and a warm hit must be far
    # cheaper than a cold compute (cache-served, no worker dispatch).
    assert hit_rate >= 0.90, f"warm hit rate {hit_rate:.1%}"
    assert warm_lat["p50_s"] < cold_lat["p50_s"]
    # Tune jobs are the most expensive kind the service caches; a warm
    # replay must serve every one of them from the store.
    assert warm_by_kind["tune"]["hit_rate"] == 1.0, warm_by_kind

    results = {
        "nprocs": NPROCS,
        "warm_rounds": WARM_ROUNDS,
        "cold": {k: v for k, v in cold.items() if k != "latencies"}
        | {"latency": cold_lat},
        "warm": {
            "jobs": warm_jobs,
            "cache_hits": warm_hits,
            "cache_hit_rate": round(hit_rate, 4),
            "retries": sum(r["retries"] for r in warm),
            "latency": warm_lat,
            "by_kind": warm_by_kind,
        },
    }
    write_json_atomic(BENCH_FILE, results)

    benchmark.extra_info["cache_hit_rate"] = round(hit_rate, 4)
    benchmark.extra_info["warm_p99_ms"] = round(warm_lat["p99_s"] * 1e3, 3)
    benchmark.extra_info["bench_file"] = str(BENCH_FILE)
    benchmark.pedantic(
        lambda: _run_round(store_root, "timed"),
        rounds=3, iterations=1,
    )
